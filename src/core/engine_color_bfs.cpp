#include "core/engine_color_bfs.hpp"

#include <algorithm>
#include <memory>

#include "support/check.hpp"

namespace evencycle::core {

namespace {

using congest::Message;

enum Tag : std::uint32_t {
  kAnnounce = 1,  ///< payload: color | (in_H << 8)
  kUpId = 2,      ///< payload: source identifier, ascending chain
  kDownId = 3,    ///< payload: source identifier, descending chain
};

struct ProtocolShape {
  std::uint32_t length;
  std::uint32_t meet;      // floor(L/2)
  std::uint32_t down_len;  // ceil(L/2)
  std::uint64_t tau;

  std::uint64_t window_start(std::uint32_t t) const {  // first round of window t>=1
    return 2 + static_cast<std::uint64_t>(t - 1) * tau;
  }
  // One round beyond the last window: an id sent in the window's final
  // round (a node forwarding a full set of tau identifiers) is *delivered*
  // at the start of the next round, so the meet comparison must wait for
  // it. Running finish() inside the last window instead silently dropped
  // those ids — found by the differential fuzzer at tau = 1, where every
  // forwarded id hit this off-by-one.
  std::uint64_t total_rounds() const { return 3 + static_cast<std::uint64_t>(down_len - 1) * tau; }
};

// Batched SoA implementation: one program object for the whole protocol,
// per-node protocol state in flat arrays indexed by vertex and per-arc
// neighbor knowledge indexed by global arc (arc_base(v) + port) — no
// per-vertex heap objects, no virtual dispatch inside a shard. The per-node
// logic is a line-for-line transcription of the historical per-vertex
// program, so rejection sets, round counts, and message counts are
// unchanged. Safe under the multi-threaded round engine: all spec fields
// are copied at construction, every array slot is written only by the
// shard owning its vertex (or its outgoing arcs), and results flow through
// ctx.reject() alone.
class ColorBfsShardProgram : public congest::ShardProgram {
 public:
  ColorBfsShardProgram(const graph::Graph& g, const ColorBfsSpec& spec,
                       const ProtocolShape& shape, const std::vector<bool>* activation)
      : g_(&g), shape_(shape) {
    const VertexId n = g.vertex_count();
    overflow_bound_ = spec.reject_on_overflow
                          ? std::max(spec.threshold, spec.overflow_floor)
                          : spec.threshold;
    reject_on_overflow_ = spec.reject_on_overflow;

    color_.assign(n, 0);
    in_h_.assign(n, 0);
    launch_.assign(n, 0);
    up_window_.assign(n, 0);
    down_window_.assign(n, 0);
    forwarding_.assign(n, 0);
    cursor_.assign(n, 0);
    up_ids_.assign(n, {});
    down_ids_.assign(n, {});
    for (VertexId v = 0; v < n; ++v) {
      color_[v] = (*spec.colors)[v];
      const bool in_h = spec.subgraph == nullptr || (*spec.subgraph)[v];
      const bool is_source = spec.sources == nullptr || (*spec.sources)[v];
      const bool activated = activation == nullptr || (*activation)[v];
      in_h_[v] = in_h ? 1 : 0;
      launch_[v] = (in_h && is_source && color_[v] == 0 && activated) ? 1 : 0;
      // Chain positions: ascending window = color (1..meet-1); descending
      // window = length - color (color in meet+1..length-1).
      if (in_h) {
        if (color_[v] >= 1 && color_[v] < shape_.meet) up_window_[v] = color_[v];
        if (color_[v] > shape_.meet && color_[v] < shape_.length)
          down_window_[v] = static_cast<std::uint8_t>(shape_.length - color_[v]);
      }
    }
    arc_color_.assign(2 * static_cast<std::size_t>(g.edge_count()), 0xff);
    arc_in_h_.assign(arc_color_.size(), 0);
  }

  void on_round(congest::ShardContext& ctx, VertexId first, VertexId last) override {
    const auto round = ctx.round();
    if (round == 0) {
      for (VertexId v = first; v < last; ++v)
        ctx.broadcast(v, {kAnnounce, static_cast<std::uint64_t>(color_[v]) |
                                         (static_cast<std::uint64_t>(in_h_[v]) << 8)});
      return;
    }
    if (round == 1) {
      for (VertexId v = first; v < last; ++v) {
        read_announcements(ctx, v);
        if (launch_[v] != 0) send_source_id(ctx, v);
      }
      return;
    }
    const bool final_round = round + 1 == shape_.total_rounds();
    for (VertexId v = first; v < last; ++v) {
      if (ctx.halted(v)) continue;
      receive_ids(ctx, v);
      stream_window(ctx, v, round);
      if (final_round) finish(ctx, v);
    }
  }

 private:
  void read_announcements(congest::ShardContext& ctx, VertexId v) {
    const std::uint32_t base = g_->arc_base(v);
    for (const auto& in : ctx.inbox(v)) {
      if (in.message.tag != kAnnounce) continue;
      arc_color_[base + in.port] = static_cast<std::uint8_t>(in.message.payload & 0xff);
      arc_in_h_[base + in.port] = static_cast<std::uint8_t>((in.message.payload >> 8) & 1);
    }
  }

  void send_source_id(congest::ShardContext& ctx, VertexId v) {
    const std::uint8_t up_first = 1;
    const auto down_first = static_cast<std::uint8_t>(shape_.length - 1);
    const std::uint32_t base = g_->arc_base(v);
    const std::uint32_t deg = ctx.degree(v);
    for (std::uint32_t p = 0; p < deg; ++p) {
      if (arc_in_h_[base + p] == 0) continue;
      // One word per link: the neighbor infers the chain from its own
      // color, so a single copy of the id suffices even when up_first ==
      // down_first is impossible (length >= 3).
      if (arc_color_[base + p] == up_first || arc_color_[base + p] == down_first)
        ctx.send(v, p, {kUpId, v});
    }
  }

  void receive_ids(congest::ShardContext& ctx, VertexId v) {
    if (in_h_[v] == 0) return;
    const std::uint32_t base = g_->arc_base(v);
    const std::uint8_t color = color_[v];
    for (const auto& in : ctx.inbox(v)) {
      if (in.message.tag == kAnnounce) continue;
      if (arc_in_h_[base + in.port] == 0) continue;
      const std::uint8_t from_color = arc_color_[base + in.port];
      const auto id = static_cast<VertexId>(in.message.payload);
      // Accept only along the chains; the sender's color determines the
      // direction (color 0 feeds both chain heads).
      if (color >= 1 && color <= shape_.meet &&
          from_color == static_cast<std::uint8_t>(color - 1)) {
        up_ids_[v].push_back(id);
      }
      const bool on_down_chain = color >= shape_.meet && color < shape_.length;
      const std::uint8_t down_pred = static_cast<std::uint8_t>((color + 1) % shape_.length);
      if (on_down_chain && color != 0 && from_color == down_pred) {
        down_ids_[v].push_back(id);
      }
    }
  }

  void stream_window(congest::ShardContext& ctx, VertexId v, std::uint64_t round) {
    stream_chain(ctx, v, round, up_window_[v], up_ids_[v], /*up=*/true);
    stream_chain(ctx, v, round, down_window_[v], down_ids_[v], /*up=*/false);
  }

  void stream_chain(congest::ShardContext& ctx, VertexId v, std::uint64_t round,
                    std::uint32_t window, std::vector<VertexId>& ids, bool up) {
    if (window == 0) return;
    const std::uint64_t start = shape_.window_start(window);
    if (round < start || round >= start + shape_.tau) return;
    if (round == start) {
      // Window opens: apply set semantics, then the threshold test
      // (Instruction 19) once, exactly as the paper's procedure does.
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      if (ids.size() > overflow_bound_ && reject_on_overflow_) {
        ctx.reject(v);
        forwarding_[v] = 0;
        return;
      }
      forwarding_[v] = (ids.size() <= shape_.tau && !ids.empty()) ? 1 : 0;
      cursor_[v] = 0;
    }
    if (forwarding_[v] == 0 || cursor_[v] >= ids.size()) return;
    // A node sits on at most one chain (up: 1..meet-1, down: meet+1..L-1),
    // so forwarding_/cursor_ are shared between the two calls safely.
    const auto to_color = up ? static_cast<std::uint8_t>(color_[v] + 1)
                             : static_cast<std::uint8_t>(color_[v] - 1);
    const std::uint32_t base = g_->arc_base(v);
    const std::uint32_t deg = ctx.degree(v);
    for (std::uint32_t p = 0; p < deg; ++p) {
      if (arc_in_h_[base + p] == 0 || arc_color_[base + p] != to_color) continue;
      ctx.send(v, p, {up ? kUpId : kDownId, ids[cursor_[v]]});
    }
    ++cursor_[v];
  }

  void finish(congest::ShardContext& ctx, VertexId v) {
    auto& up = up_ids_[v];
    auto& down = down_ids_[v];
    if (in_h_[v] != 0 && color_[v] == shape_.meet && !up.empty() && !down.empty()) {
      std::sort(up.begin(), up.end());
      std::sort(down.begin(), down.end());
      std::size_t i = 0, j = 0;
      while (i < up.size() && j < down.size()) {
        if (up[i] < down[j]) {
          ++i;
        } else if (down[j] < up[i]) {
          ++j;
        } else {
          ctx.reject(v);
          break;
        }
      }
    }
    ctx.halt(v);
  }

  const graph::Graph* g_;
  ProtocolShape shape_;
  bool reject_on_overflow_ = false;
  std::uint64_t overflow_bound_ = 0;

  // Per node, flat.
  std::vector<std::uint8_t> color_;
  std::vector<std::uint8_t> in_h_;
  std::vector<std::uint8_t> launch_;       // in_h && source && color 0 && activated
  std::vector<std::uint8_t> up_window_;    // 0 = not on the ascending chain
  std::vector<std::uint8_t> down_window_;  // 0 = not on the descending chain
  std::vector<std::uint8_t> forwarding_;
  std::vector<std::uint32_t> cursor_;
  std::vector<std::vector<VertexId>> up_ids_;
  std::vector<std::vector<VertexId>> down_ids_;

  // Per directed arc (arc_base(v) + port): the neighbor's announcement.
  std::vector<std::uint8_t> arc_color_;
  std::vector<std::uint8_t> arc_in_h_;
};

}  // namespace

std::vector<bool> draw_activation(const graph::Graph& g, const ColorBfsSpec& spec, Rng& rng) {
  std::vector<bool> activated(g.vertex_count(), false);
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    const bool in_h = spec.subgraph == nullptr || (*spec.subgraph)[v];
    const bool in_x = spec.sources == nullptr || (*spec.sources)[v];
    if (!in_h || !in_x || (*spec.colors)[v] != 0) continue;
    activated[v] = spec.activation_prob >= 1.0 || rng.bernoulli(spec.activation_prob);
  }
  return activated;
}

EngineColorBfsResult run_color_bfs_on_engine(congest::Network& net, const ColorBfsSpec& spec) {
  const auto& g = net.topology();
  EC_REQUIRE(spec.colors != nullptr && spec.colors->size() == g.vertex_count(),
             "coloring required");
  EC_REQUIRE(spec.threshold >= 1, "threshold must be positive");
  EC_REQUIRE(spec.cycle_length >= 3, "cycle length must be at least 3");
  EC_REQUIRE(spec.activation_prob >= 1.0 || spec.forced_activation != nullptr,
             "randomized activation requires forced_activation for reproducibility");

  ProtocolShape shape;
  shape.length = spec.cycle_length;
  shape.meet = spec.cycle_length / 2;
  shape.down_len = spec.cycle_length - shape.meet;
  shape.tau = spec.threshold;

  net.install(std::make_shared<ColorBfsShardProgram>(g, spec, shape,
                                                     spec.forced_activation));
  net.run_rounds(shape.total_rounds());

  EngineColorBfsResult result;
  result.rejected = net.any_rejected();
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    if (net.rejected(v)) result.rejecting_nodes.push_back(v);
  result.rounds = net.metrics().rounds;
  result.messages = net.metrics().messages;
  return result;
}

}  // namespace evencycle::core
