#include "core/complexity_model.hpp"

#include <cmath>

#include "support/check.hpp"

namespace evencycle::core {

double exponent_ours_classical(std::uint32_t k) {
  EC_REQUIRE(k >= 2, "k >= 2");
  return 1.0 - 1.0 / static_cast<double>(k);
}

double exponent_censor_hillel(std::uint32_t k) {
  EC_REQUIRE(k >= 2 && k <= 5, "[10] covers k in {2..5}");
  return 1.0 - 1.0 / static_cast<double>(k);
}

double exponent_eden(std::uint32_t k) {
  EC_REQUIRE(k >= 3, "[16] targets k >= 3");
  const double kd = k;
  if (k % 2 == 0) return 1.0 - 2.0 / (kd * kd - 2.0 * kd + 4.0);
  return 1.0 - 2.0 / (kd * kd - kd + 2.0);
}

double exponent_ours_quantum(std::uint32_t k) {
  EC_REQUIRE(k >= 2, "k >= 2");
  return 0.5 - 0.5 / static_cast<double>(k);
}

double exponent_vadv_quantum(std::uint32_t k) {
  EC_REQUIRE(k >= 2, "k >= 2");
  return 0.5 - 1.0 / (4.0 * static_cast<double>(k) + 2.0);
}

double predicted_rounds(double exponent, double n, double polylog_power) {
  EC_REQUIRE(n >= 2.0, "n too small");
  return std::pow(n, exponent) * std::pow(std::log2(n), polylog_power);
}

std::vector<Table1Row> table1_rows(std::uint32_t k) {
  EC_REQUIRE(k >= 2, "k >= 2");
  std::vector<Table1Row> rows;
  auto add = [&](std::string ref, std::string problem, Framework fw, bool lb, double expo,
                 std::string text) {
    rows.push_back({std::move(ref), std::move(problem), fw, lb, expo, std::move(text)});
  };

  add("[11]", "C3", Framework::kRandomized, false, 1.0 / 3.0, "~O(n^{1/3})");
  add("[15,30]", "C_{2k+1}, k>=2", Framework::kDeterministic, false, 1.0, "~Theta(n)");
  add("[15]", "C4", Framework::kRandomized, false, 0.5, "~Theta(sqrt(n))");
  add("[30]", "C_{2k}, k>=2 (LB)", Framework::kRandomized, true, 0.5, "~Omega(sqrt(n))");
  if (k >= 2 && k <= 5)
    add("[10]", "C_{2k}, k in {2..5}", Framework::kRandomized, false,
        exponent_censor_hillel(k), "O(n^{1-1/k})");
  if (k >= 3) {
    add("[16]", k % 2 == 0 ? "C_{2k}, k even" : "C_{2k}, k odd", Framework::kRandomized, false,
        exponent_eden(k),
        k % 2 == 0 ? "~O(n^{1-2/(k^2-2k+4)})" : "~O(n^{1-2/(k^2-k+2)})");
  }
  add("[10]", "{C_l | 3<=l<=2k}", Framework::kRandomized, false, exponent_ours_classical(k),
      "~O(n^{1-1/k})");
  add("this paper", "C_{2k}, k>=2", Framework::kRandomized, false, exponent_ours_classical(k),
      "O(n^{1-1/k})");
  add("[8]", "C3", Framework::kQuantum, false, 0.2, "~O(n^{1/5})");
  add("[9]", "C4", Framework::kQuantum, false, 0.25, "~O(n^{1/4})");
  add("[33]", "{C_l | 3<=l<=2k}", Framework::kQuantum, false, exponent_vadv_quantum(k),
      "~O(n^{1/2-1/(4k+2)})");
  add("this paper", "C_{2k}, k>=2", Framework::kQuantum, false, exponent_ours_quantum(k),
      "~O(n^{1/2-1/2k})");
  add("this paper", "C_{2k}, k>=2 (LB)", Framework::kQuantum, true, 0.25, "~Omega(n^{1/4})");
  add("this paper", "C_{2k+1}, k>=2", Framework::kQuantum, false, 0.5, "~Theta(sqrt(n))");
  add("this paper", "{C_l | 3<=l<=2k}", Framework::kQuantum, false, exponent_ours_quantum(k),
      "~O(n^{1/2-1/2k})");
  return rows;
}

}  // namespace evencycle::core
