#include "core/params.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace evencycle::core {

std::uint64_t ceil_root(std::uint64_t n, std::uint32_t k) {
  EC_REQUIRE(k >= 1, "root order must be positive");
  if (n <= 1 || k == 1) return n;
  auto pow_k = [k](std::uint64_t base) {
    std::uint64_t result = 1;
    for (std::uint32_t i = 0; i < k; ++i) {
      if (base != 0 && result > ~std::uint64_t{0} / base) return ~std::uint64_t{0};
      result *= base;
    }
    return result;
  };
  auto r = static_cast<std::uint64_t>(std::ceil(std::pow(static_cast<double>(n), 1.0 / k)));
  while (r > 1 && pow_k(r - 1) >= n) --r;
  while (pow_k(r) < n) ++r;
  return r;
}

namespace {

Params base(std::uint32_t k, VertexId n, double epsilon) {
  EC_REQUIRE(k >= 2, "Algorithm 1 targets C_{2k} with k >= 2");
  EC_REQUIRE(n >= 2, "graph too small");
  EC_REQUIRE(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
  Params params;
  params.k = k;
  params.epsilon = epsilon;
  params.eps_hat = std::log(3.0 / epsilon);
  params.light_degree_bound = ceil_root(n, k);
  params.activator_degree = k * k;
  return params;
}

/// tau = k * 2^k * n * p (Instruction 6).
std::uint64_t threshold_for(std::uint32_t k, VertexId n, double p) {
  const double tau = static_cast<double>(k) * std::ldexp(1.0, static_cast<int>(k)) *
                     static_cast<double>(n) * p;
  return static_cast<std::uint64_t>(std::ceil(std::max(1.0, tau)));
}

}  // namespace

// At small n the paper's p = Theta(k^2 / n^{1/k}) exceeds 1, which would
// select every vertex and leave W = N(S) \ S empty. Clamping at 1/2 keeps
// the S/W machinery meaningful on simulation-scale inputs and is
// irrelevant asymptotically (the paper's regime has p -> 0).
constexpr double kSelectionProbCap = 0.5;

Params Params::theory(std::uint32_t k, VertexId n, double epsilon) {
  Params params = base(k, n, epsilon);
  // The paper's p is real-valued n^{-1/k}; only the light-degree bound is
  // an integer threshold.
  const double root = std::pow(static_cast<double>(n), 1.0 / k);
  params.selection_prob =
      std::min(kSelectionProbCap,
               params.eps_hat * 2.0 * k * k / root);  // p = eps_hat * 2k^2 / n^{1/k}
  const double reps = params.eps_hat * std::pow(2.0 * k, 2.0 * k);  // K = eps_hat * (2k)^{2k}
  params.repetitions = static_cast<std::uint64_t>(std::ceil(reps));
  params.threshold = threshold_for(k, n, params.selection_prob);
  return params;
}

Params Params::practical(std::uint32_t k, VertexId n, const PracticalTuning& tuning) {
  Params params = base(k, n, /*epsilon=*/1.0 / 3.0);
  const double root = std::pow(static_cast<double>(n), 1.0 / k);
  params.selection_prob =
      std::min(kSelectionProbCap, tuning.selection_constant * k * k / root);
  if (tuning.repetitions > 0) {
    params.repetitions = tuning.repetitions;
  } else {
    const double reps = params.eps_hat * std::pow(2.0 * k, 2.0 * k);
    params.repetitions = static_cast<std::uint64_t>(
        std::min<double>(static_cast<double>(tuning.repetition_cap), std::ceil(reps)));
  }
  params.threshold = threshold_for(k, n, params.selection_prob);
  return params;
}

}  // namespace evencycle::core
