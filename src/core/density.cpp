#include "core/density.hpp"

#include <algorithm>
#include <deque>

#include "support/check.hpp"

namespace evencycle::core {

namespace {

bool contains_edge(const std::vector<std::uint32_t>& sorted_edges, std::uint32_t e) {
  return std::binary_search(sorted_edges.begin(), sorted_edges.end(), e);
}

}  // namespace

DensityAnalysis::DensityAnalysis(const graph::Graph& g, DensityInput input)
    : g_(g), input_(std::move(input)) {
  validate();
  build_bipartite_edges();
  const VertexId n = g_.vertex_count();
  in_.resize(n);
  out_.resize(n);
  in_zero_.resize(n);
  in_levels_.resize(n);
  sparsify();
}

void DensityAnalysis::validate() const {
  EC_REQUIRE(input_.k >= 2, "density analysis needs k >= 2");
  EC_REQUIRE(input_.in_s.size() == g_.vertex_count(), "in_s size mismatch");
  EC_REQUIRE(input_.layer_of.size() == g_.vertex_count(), "layer_of size mismatch");
  for (VertexId v = 0; v < g_.vertex_count(); ++v) {
    const auto layer = input_.layer_of[v];
    EC_REQUIRE(layer == kNoLayer || layer < input_.k, "layer out of range [0, k-1]");
    EC_REQUIRE(!(input_.in_s[v] && layer != kNoLayer), "S overlaps a layer");
  }
}

void DensityAnalysis::build_bipartite_edges() {
  const VertexId n = g_.vertex_count();
  incident_.resize(n);
  std::uint32_t next_edge = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (input_.in_s[v]) ++s_size_;
    if (input_.layer_of[v] != 0) continue;  // only W0 vertices
    for (VertexId nb : g_.neighbors(v)) {
      if (!input_.in_s[nb]) continue;
      edges_.emplace_back(nb, v);
      incident_[v].push_back(next_edge++);
    }
  }
}

struct DensityAnalysis::PeelResult {
  std::vector<std::vector<std::uint32_t>> levels;  // IN(v, 0) .. IN(v, 2q)
  std::vector<std::uint32_t> out;
};

void DensityAnalysis::sparsify() {
  const VertexId n = g_.vertex_count();
  // Layer 0: OUT(w) = E({w}, S) (Eq. 3).
  for (VertexId v = 0; v < n; ++v) {
    if (input_.layer_of[v] == 0) out_[v] = incident_[v];
  }

  // Scratch degree counters over the bipartite edge universe.
  std::vector<std::uint32_t> degree(n, 0);
  std::vector<VertexId> touched;
  auto count_degrees = [&](const std::vector<std::uint32_t>& edge_set, bool s_side) {
    for (auto e : edge_set) {
      const VertexId endpoint = s_side ? edges_[e].first : edges_[e].second;
      if (degree[endpoint]++ == 0) touched.push_back(endpoint);
    }
  };
  auto reset_degrees = [&] {
    for (auto v : touched) degree[v] = 0;
    touched.clear();
  };

  // Process layers bottom-up (IN(v) depends on OUT of the layer below).
  std::vector<std::vector<VertexId>> by_layer(input_.k);
  for (VertexId v = 0; v < n; ++v) {
    const auto layer = input_.layer_of[v];
    if (layer != kNoLayer && layer >= 1) by_layer[layer].push_back(v);
  }

  for (std::uint32_t i = 1; i < input_.k; ++i) {
    const std::uint32_t q = (input_.k - i) / 2;
    const std::uint64_t init_bound =
        (std::uint64_t{1} << (i - 1)) * (input_.k - 1);  // 2^{i-1}(k-1), Eq. 5

    for (VertexId v : by_layer[i]) {
      // IN(v) = union of OUT(v') over neighbors v' in layer i-1 (Eq. 4).
      auto& in_v = in_[v];
      for (VertexId nb : g_.neighbors(v)) {
        if (input_.layer_of[nb] == static_cast<std::uint8_t>(i - 1)) {
          in_v.insert(in_v.end(), out_[nb].begin(), out_[nb].end());
        }
      }
      std::sort(in_v.begin(), in_v.end());
      in_v.erase(std::unique(in_v.begin(), in_v.end()), in_v.end());
      if (in_v.empty()) continue;

      auto& levels = in_levels_[v];
      levels.assign(2 * q + 1, {});
      auto& out_v = out_[v];

      // Initialization (Eq. 5): keep edges whose S endpoint is heavy in
      // IN(v); light-S edges fall into OUT(v) (Eq. 8, first part).
      count_degrees(in_v, /*s_side=*/true);
      for (auto e : in_v) {
        if (degree[edges_[e].first] > init_bound)
          levels[2 * q].push_back(e);
        else
          out_v.push_back(e);
      }
      reset_degrees();

      // Peeling (Eqs. 6-7), gamma = q down to 1.
      for (std::uint32_t gamma = q; gamma >= 1; --gamma) {
        // 2*gamma -> 2*gamma - 1: keep edges with heavy W endpoint.
        count_degrees(levels[2 * gamma], /*s_side=*/false);
        for (auto e : levels[2 * gamma]) {
          if (degree[edges_[e].second] > 2 * gamma) levels[2 * gamma - 1].push_back(e);
        }
        reset_degrees();
        // 2*gamma - 1 -> 2*gamma - 2: keep edges with heavy S endpoint;
        // light-S edges fall into OUT(v) (Eq. 8, second part).
        count_degrees(levels[2 * gamma - 1], /*s_side=*/true);
        for (auto e : levels[2 * gamma - 1]) {
          if (degree[edges_[e].first] > 2 * gamma - 1)
            levels[2 * gamma - 2].push_back(e);
          else
            out_v.push_back(e);
        }
        reset_degrees();
      }

      std::sort(out_v.begin(), out_v.end());
      out_v.erase(std::unique(out_v.begin(), out_v.end()), out_v.end());
      in_zero_[v] = levels[0];
      if (!levels[0].empty() && !witness_.has_value()) witness_ = v;
    }
  }
}

std::uint64_t DensityAnalysis::w0_reachable(VertexId v) const {
  const auto layer = input_.layer_of[v];
  EC_REQUIRE(layer != kNoLayer, "vertex is not in a layer");
  if (layer == 0) return 1;
  // D_j = vertices of layer j with an ascending path to v.
  std::vector<bool> current(g_.vertex_count(), false);
  current[v] = true;
  for (std::uint32_t j = layer; j >= 1; --j) {
    std::vector<bool> next(g_.vertex_count(), false);
    for (VertexId u = 0; u < g_.vertex_count(); ++u) {
      if (!current[u]) continue;
      for (VertexId nb : g_.neighbors(u)) {
        if (input_.layer_of[nb] == static_cast<std::uint8_t>(j - 1)) next[nb] = true;
      }
    }
    current = std::move(next);
  }
  std::uint64_t count = 0;
  for (VertexId w = 0; w < g_.vertex_count(); ++w)
    if (current[w]) ++count;
  return count;
}

std::uint64_t DensityAnalysis::lemma7_bound(VertexId v) const {
  const auto layer = input_.layer_of[v];
  EC_REQUIRE(layer != kNoLayer && layer >= 1, "lemma 7 applies to layers 1..k-1");
  return (std::uint64_t{1} << (layer - 1)) * (input_.k - 1) * s_size_;
}

std::vector<std::uint32_t> DensityAnalysis::trace_lemma5_path(VertexId v,
                                                              std::uint32_t edge) const {
  // Lemma 5: walk down the layers choosing neighbors whose OUT contains
  // the edge; returns [v_1, ..., v_{i-1}] (empty when i == 1).
  const std::uint32_t i = input_.layer_of[v];
  std::vector<std::uint32_t> descend;
  VertexId current = v;
  for (std::uint32_t j = i; j-- > 1;) {
    VertexId found = graph::kInvalidVertex;
    for (VertexId nb : g_.neighbors(current)) {
      if (input_.layer_of[nb] == static_cast<std::uint8_t>(j) && contains_edge(out_[nb], edge)) {
        found = nb;
        break;
      }
    }
    EC_SIM_CHECK(found != graph::kInvalidVertex,
                 "Lemma 5 trace failed: no lower-layer neighbor owns the edge");
    descend.push_back(found);
    current = found;
  }
  std::reverse(descend.begin(), descend.end());
  return descend;
}

std::vector<VertexId> DensityAnalysis::construct_cycle(VertexId v) const {
  const std::uint32_t i = input_.layer_of[v];
  EC_REQUIRE(i != kNoLayer && i >= 1 && i < input_.k, "witness must lie in a layer >= 1");
  const auto& levels = in_levels_[v];
  EC_REQUIRE(!levels.empty() && !levels[0].empty(), "construct_cycle requires IN(v,0) nonempty");
  const std::uint32_t q = (input_.k - i) / 2;
  const std::uint32_t k = input_.k;

  std::vector<bool> used_s(g_.vertex_count(), false);
  std::vector<bool> used_w(g_.vertex_count(), false);

  // pick an edge in `level` incident to `vertex` (on side `s_side`) whose
  // other endpoint is fresh.
  auto pick_fresh = [&](const std::vector<std::uint32_t>& level, VertexId vertex,
                        bool vertex_is_s) -> std::pair<VertexId, std::uint32_t> {
    for (auto e : level) {
      const auto [s, w] = edges_[e];
      if (vertex_is_s) {
        if (s == vertex && !used_w[w]) return {w, e};
      } else {
        if (w == vertex && !used_s[s]) return {s, e};
      }
    }
    EC_SIM_CHECK(false, "Claim 1 extension failed: no fresh endpoint available");
    return {graph::kInvalidVertex, 0};
  };

  // --- Claim 1: path P alternating W0/S inside the IN(v, gamma) graphs.
  // Grown from both ends around the seed s1; `left`/`right` store the
  // vertices beyond the seed (nearest first).
  const VertexId s1 = edges_[levels[0].front()].first;
  used_s[s1] = true;
  std::vector<VertexId> left, right;  // left.back() / right.back() are the ends
  VertexId left_end = s1, right_end = s1;

  for (std::uint32_t gamma = 0; gamma < q; ++gamma) {
    auto [wl, el] = pick_fresh(levels[2 * gamma + 1], left_end, /*vertex_is_s=*/true);
    used_w[wl] = true;
    left.push_back(wl);
    auto [wr, er] = pick_fresh(levels[2 * gamma + 1], right_end, /*vertex_is_s=*/true);
    used_w[wr] = true;
    right.push_back(wr);
    auto [sl, el2] = pick_fresh(levels[2 * gamma + 2], wl, /*vertex_is_s=*/false);
    used_s[sl] = true;
    left.push_back(sl);
    left_end = sl;
    auto [sr, er2] = pick_fresh(levels[2 * gamma + 2], wr, /*vertex_is_s=*/false);
    used_s[sr] = true;
    right.push_back(sr);
    right_end = sr;
    (void)el;
    (void)er;
    (void)el2;
    (void)er2;
  }

  // Assemble P_q = (left_end ... s1 ... right_end), then fix parity so P
  // has 2(k-i) vertices with a W0 end (front) and an S end (back).
  std::vector<VertexId> p;
  for (auto it = left.rbegin(); it != left.rend(); ++it) p.push_back(*it);
  p.push_back(s1);
  p.insert(p.end(), right.begin(), right.end());

  if ((k - i) % 2 == 0) {
    // P_q has 2(k-i)+1 vertices; drop the left S end.
    p.erase(p.begin());
  } else {
    // P_q has 2(k-i)-1 vertices; extend the left end with a fresh W0
    // vertex through IN(v, 2q).
    auto [w_extra, e_extra] = pick_fresh(levels[2 * q], p.front(), /*vertex_is_s=*/true);
    (void)e_extra;
    used_w[w_extra] = true;
    p.insert(p.begin(), w_extra);
  }
  EC_SIM_CHECK(p.size() == 2 * (k - i), "path P has the wrong length");

  const VertexId w_end = p.front();  // in W0
  const VertexId s_end = p.back();   // in S

  // --- Claim 2, path P': trace the edge of P at w_end down the layers.
  const std::uint32_t edge_at_w = [&] {
    for (auto e : incident_[w_end])
      if (edges_[e].first == p[1]) return e;
    EC_SIM_CHECK(false, "edge of P at its W0 end not found");
    return std::uint32_t{0};
  }();
  const auto p_prime = trace_lemma5_path(v, edge_at_w);  // [v'_1 .. v'_{i-1}]

  // --- Claim 2, path P'': an IN(v) edge at s_end avoiding P's W0 vertices
  // and every OUT(v'_j).
  std::uint32_t e2 = ~std::uint32_t{0};
  for (auto e : in_[v]) {
    if (edges_[e].first != s_end) continue;
    const VertexId w = edges_[e].second;
    if (used_w[w]) continue;  // exactly P's W0 vertices are marked used
    bool in_some_out = false;
    for (auto vj : p_prime) {
      if (contains_edge(out_[vj], e)) {
        in_some_out = true;
        break;
      }
    }
    if (!in_some_out) {
      e2 = e;
      break;
    }
  }
  EC_SIM_CHECK(e2 != ~std::uint32_t{0}, "Claim 2 failed: no suitable edge at the S end");
  const VertexId w_second = edges_[e2].second;
  const auto p_second = trace_lemma5_path(v, e2);  // [v''_1 .. v''_{i-1}]

  // --- Assemble the 2k-cycle: w_end --P-- s_end -- w'' --P''-- v --P'-- w_end.
  std::vector<VertexId> cycle = p;
  cycle.push_back(w_second);
  cycle.insert(cycle.end(), p_second.begin(), p_second.end());
  cycle.push_back(v);
  cycle.insert(cycle.end(), p_prime.rbegin(), p_prime.rend());
  EC_SIM_CHECK(cycle.size() == 2 * k, "constructed cycle has the wrong length");
  return cycle;
}

DensityInput density_input_from_coloring(const graph::Graph& g, std::uint32_t k,
                                         const std::vector<bool>& selected,
                                         const std::vector<bool>& activator,
                                         const std::vector<std::uint8_t>& colors) {
  DensityInput input;
  input.k = k;
  input.in_s = selected;
  input.layer_of.assign(g.vertex_count(), kNoLayer);
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (selected[v]) continue;
    if (colors[v] == 0) {
      if (activator[v]) input.layer_of[v] = 0;
    } else if (colors[v] < k) {
      input.layer_of[v] = colors[v];
    }
  }
  return input;
}

}  // namespace evencycle::core
