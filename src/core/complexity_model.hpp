// Analytic round-complexity model of every row of the paper's Table 1.
//
// The benches plot these alongside measured rounds: absolute constants are
// not the paper's claim (they depend on the model of a "round"), the
// exponents and the who-beats-whom ordering are.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace evencycle::core {

enum class Framework { kDeterministic, kRandomized, kQuantum };

struct Table1Row {
  std::string reference;   ///< e.g. "[10]", "this paper"
  std::string problem;     ///< e.g. "C_{2k}, k>=2"
  Framework framework = Framework::kRandomized;
  bool lower_bound = false;
  /// Round complexity exponent: rounds ~ n^exponent (polylog ignored).
  double exponent = 0.0;
  std::string complexity;  ///< human-readable, e.g. "O(n^{1-1/k})"
};

/// The full Table 1, instantiated for a concrete k >= 2.
std::vector<Table1Row> table1_rows(std::uint32_t k);

// --- exponents used by the rows (paper Section 1, Table 1) -------------------

/// This paper, classical: C_{2k} in O(n^{1-1/k}).
double exponent_ours_classical(std::uint32_t k);

/// Censor-Hillel et al. [10], k in {2..5}: O(n^{1-1/k}).
double exponent_censor_hillel(std::uint32_t k);

/// Eden et al. [16]: O(n^{1-2/(k^2-2k+4)}) for even k, O(n^{1-2/(k^2-k+2)})
/// for odd k (k >= 6 resp. k >= 7; defined for all k >= 3 here).
double exponent_eden(std::uint32_t k);

/// This paper, quantum: C_{2k} in ~O(n^{1/2-1/2k}).
double exponent_ours_quantum(std::uint32_t k);

/// van Apeldoorn & de Vos [33], quantum bounded-length: ~O(n^{1/2-1/(4k+2)}).
double exponent_vadv_quantum(std::uint32_t k);

/// Predicted rounds (constant 1, optional polylog factor).
double predicted_rounds(double exponent, double n, double polylog_power = 0.0);

}  // namespace evencycle::core
