// Faithful message-level implementation of color-BFS with threshold,
// running on the CONGEST engine.
//
// Unlike the phase-level reference in color_bfs.hpp (which charges rounds
// analytically), this version actually streams identifiers one word per
// link per round, using the worst-case fixed window schedule a real node
// must follow without global knowledge:
//
//   round 0                       : every node announces (color, in-H bit)
//   round 1                       : activated color-0 sources send their id
//   rounds 2 + (t-1)*tau .. t*tau : window t, chain position t streams I_v
//   one round after the last window: meet-colored nodes compare chains
//   (ids sent in a window's final round are delivered one round later)
//
// Total rounds: 3 + (ceil(L/2) - 1) * tau, within the paper's O(k*tau)
// charge for L = 2k. Tests cross-validate the rejection set against
// run_color_bfs on identical randomness.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/network.hpp"
#include "core/color_bfs.hpp"

namespace evencycle::core {

struct EngineColorBfsResult {
  bool rejected = false;
  std::vector<VertexId> rejecting_nodes;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
};

/// Runs the protocol on `net` (whose topology supplies the graph).
/// `spec.forced_activation` must be set when spec.activation_prob < 1 so the
/// run is reproducible; reject_on_overflow is supported.
EngineColorBfsResult run_color_bfs_on_engine(congest::Network& net, const ColorBfsSpec& spec);

/// Draws the per-vertex activation coin flips for a spec (helper for
/// comparing the two implementations on identical randomness).
std::vector<bool> draw_activation(const graph::Graph& g, const ColorBfsSpec& spec, Rng& rng);

}  // namespace evencycle::core
