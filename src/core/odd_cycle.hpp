// Odd-cycle detection C_{2k+1} (paper Section 3.4).
//
// The paper's quantum Õ(√n) algorithm amplifies a classical randomized
// detector with success probability Ω(1/n): colors in {0..2k}, each color-0
// node activates with probability 1/n, constant threshold 4, and a node
// colored k rejects on seeing the same identifier over a length-k path
// (colors 0..k) and a length-(k+1) path (colors 0, 2k, ..., k+1, k). This
// module provides that detector plus the "full" variant (activation 1,
// threshold n — never discards) which serves as the Õ(n)-round classical
// baseline in Table 1's odd rows.
#pragma once

#include <cstdint>

#include "core/color_bfs.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace evencycle::core {

struct OddCycleOptions {
  /// Number of random colorings.
  std::uint64_t repetitions = 64;

  /// true: Section 3.4 low-congestion detector (activation 1/n, threshold
  /// 4, success Ω(1/n) — the base fed to quantum amplification).
  /// false: full activation with threshold n (the Õ(n) classical baseline).
  bool low_congestion = false;

  bool stop_on_reject = true;
};

struct OddCycleReport {
  bool cycle_detected = false;
  std::uint64_t iterations_run = 0;
  std::uint64_t rounds_measured = 0;
  std::uint64_t rounds_charged = 0;
  std::uint64_t max_congestion = 0;
};

/// Detects C_{2k+1}, k >= 1 (C3 allowed: the paper leaves its complexity
/// open but the detector itself applies).
OddCycleReport detect_odd_cycle(const graph::Graph& g, std::uint32_t k,
                                const OddCycleOptions& options, Rng& rng);

}  // namespace evencycle::core
