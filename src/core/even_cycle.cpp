#include "core/even_cycle.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace evencycle::core {

AlgorithmSets build_sets(const graph::Graph& g, const Params& params, Rng& rng) {
  const VertexId n = g.vertex_count();
  AlgorithmSets sets;
  sets.light.assign(n, false);
  sets.selected.assign(n, false);
  sets.activator.assign(n, false);

  // Instruction 1: U = {deg(u) <= n^{1/k}}.
  for (VertexId v = 0; v < n; ++v) {
    if (g.degree(v) <= params.light_degree_bound) {
      sets.light[v] = true;
      ++sets.light_count;
    }
  }
  // Instructions 3-4: S by independent Bernoulli(p).
  for (VertexId v = 0; v < n; ++v) {
    if (rng.bernoulli(params.selection_prob)) {
      sets.selected[v] = true;
      ++sets.selected_count;
    }
  }
  // Instruction 5: W = {u not in S : |N(u) ∩ S| >= k^2}.
  for (VertexId v = 0; v < n; ++v) {
    if (sets.selected[v]) continue;
    std::uint32_t hits = 0;
    for (VertexId nb : g.neighbors(v)) {
      if (sets.selected[nb] && ++hits >= params.activator_degree) break;
    }
    if (hits >= params.activator_degree) {
      sets.activator[v] = true;
      ++sets.activator_count;
    }
  }
  return sets;
}

namespace {

void accumulate(DetectionReport& report, const ColorBfsOutcome& outcome) {
  report.rounds_measured += outcome.rounds_measured;
  report.rounds_charged += outcome.rounds_charged;
  report.max_congestion = std::max(report.max_congestion, outcome.max_set_size);
  report.threshold_discards += outcome.discarded_nodes;
  if (outcome.rejected) {
    report.cycle_detected = true;
    report.rejecting_nodes += outcome.rejecting_nodes.size();
  }
}

}  // namespace

IterationOutcome run_iteration(const graph::Graph& g, const Params& params,
                               const AlgorithmSets& sets, const std::vector<std::uint8_t>& colors,
                               Rng& rng, const DetectOptions& options) {
  EC_REQUIRE(colors.size() == g.vertex_count(), "coloring size mismatch");

  ColorBfsSpec spec;
  spec.cycle_length = 2 * params.k;
  spec.colors = &colors;
  if (options.low_congestion) {
    spec.threshold = options.low_congestion_threshold;
    spec.activation_prob = 1.0 / static_cast<double>(std::max<std::uint64_t>(1, params.threshold));
  } else {
    spec.threshold = params.threshold;
    spec.activation_prob = 1.0;
  }

  IterationOutcome outcome;

  // Instruction 9: color-BFS(k, G[U], c, U, tau).
  spec.subgraph = &sets.light;
  spec.sources = &sets.light;
  outcome.light = run_color_bfs(g, spec, rng);

  // Instruction 10: color-BFS(k, G, c, S, tau).
  spec.subgraph = nullptr;
  spec.sources = &sets.selected;
  outcome.selected = run_color_bfs(g, spec, rng);

  // Instruction 11: color-BFS(k, G[V\S], c, W, tau).
  // V \ S as a mask.
  std::vector<bool> not_selected(sets.selected.size());
  for (std::size_t v = 0; v < not_selected.size(); ++v) not_selected[v] = !sets.selected[v];
  spec.subgraph = &not_selected;
  spec.sources = &sets.activator;
  outcome.heavy = run_color_bfs(g, spec, rng);

  return outcome;
}

DetectionReport detect_even_cycle(const graph::Graph& g, const Params& params, Rng& rng,
                                  const DetectOptions& options) {
  DetectionReport report;

  const AlgorithmSets sets = build_sets(g, params, rng);
  report.light_count = sets.light_count;
  report.selected_count = sets.selected_count;
  report.activator_count = sets.activator_count;

  for (std::uint64_t iter = 0; iter < params.repetitions; ++iter) {
    const auto colors = random_coloring(g.vertex_count(), 2 * params.k, rng);
    const IterationOutcome outcome = run_iteration(g, params, sets, colors, rng, options);
    ++report.iterations_run;
    accumulate(report, outcome.light);
    accumulate(report, outcome.selected);
    accumulate(report, outcome.heavy);
    if (report.cycle_detected && options.stop_on_reject) break;
  }
  return report;
}

}  // namespace evencycle::core
