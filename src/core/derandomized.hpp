// Derandomized color-coding (paper Conclusion).
//
// The paper notes that "the randomized color-coding phases can often be
// replaced by deterministic protocols based on [20]" (perfect hash
// families). A full (n, 2k)-perfect family is enormous but enumerable; this
// module provides the practical middle ground the conclusion gestures at:
//
//   * AffineColoringFamily — colorings c_i(v) = ((a_i v + b_i) mod p) mod L
//     over a prime p >= n, with (a_i, b_i) enumerated deterministically.
//     Every node can compute its color from the public index i with zero
//     communication and zero shared randomness (the derandomization the
//     conclusion asks for); the family's cycle-hitting rate matches the
//     uniform-coloring rate empirically (tested) though, unlike [20], it
//     carries no worst-case guarantee — that caveat is documented in
//     DESIGN.md.
//   * detect_even_cycle_derandomized — Algorithm 1 iterating over the
//     family instead of fresh random colorings; fully deterministic given
//     the set S.
#pragma once

#include <cstdint>
#include <vector>

#include "core/even_cycle.hpp"
#include "graph/graph.hpp"

namespace evencycle::core {

class AffineColoringFamily {
 public:
  /// Family over [0, n) with the given palette; `size` members.
  AffineColoringFamily(VertexId n, std::uint32_t palette, std::uint64_t size);

  std::uint64_t size() const { return size_; }
  std::uint32_t palette() const { return palette_; }

  /// The index-th coloring (deterministic; no state).
  std::vector<std::uint8_t> coloring(std::uint64_t index) const;

  /// Color of a single vertex under member `index` — what a CONGEST node
  /// computes locally.
  std::uint8_t color_of(std::uint64_t index, VertexId v) const;

  /// True if some member colors the given vertex sequence consecutively
  /// 0,1,...,len-1 in some rotation/direction (the color-coding hit test).
  bool hits_cycle(const std::vector<VertexId>& cycle) const;

 private:
  VertexId n_;
  std::uint32_t palette_;
  std::uint64_t size_;
  std::uint64_t prime_;
};

/// Smallest prime >= value (value must be >= 2 and fit comfortably in 64
/// bits; used for the affine family modulus).
std::uint64_t next_prime(std::uint64_t value);

/// Algorithm 1 with the deterministic coloring family: identical structure,
/// colorings drawn from the family in index order. The only randomness left
/// is the selection of S (the paper's conclusion notes that removing *that*
/// randomness is open for k >= 3).
DetectionReport detect_even_cycle_derandomized(const graph::Graph& g, const Params& params,
                                               const AffineColoringFamily& family, Rng& rng,
                                               const DetectOptions& options = {});

}  // namespace evencycle::core
