#include "core/bounded_cycle.hpp"

#include <algorithm>
#include <cmath>

#include "core/params.hpp"
#include "support/check.hpp"

namespace evencycle::core {

namespace {

struct PairSets {
  std::vector<bool> light;      ///< deg <= n^{1/l}
  std::vector<bool> selected;   ///< S
  std::vector<bool> neighbors;  ///< W = N(S) \ S
  std::uint64_t selected_count = 0;
  std::uint64_t threshold = 1;  ///< 2 n p
};

PairSets build_pair_sets(const graph::Graph& g, std::uint32_t l, double selection_constant,
                         Rng& rng) {
  const VertexId n = g.vertex_count();
  PairSets sets;
  sets.light.assign(n, false);
  sets.selected.assign(n, false);
  sets.neighbors.assign(n, false);

  const std::uint64_t light_bound = ceil_root(n, l);
  for (VertexId v = 0; v < n; ++v)
    if (g.degree(v) <= light_bound) sets.light[v] = true;

  // Clamped at 1/2 for the same reason as Params (W = N(S) \ S must stay
  // nonempty on small inputs).
  const double p =
      std::min(0.5, selection_constant * l * l / static_cast<double>(ceil_root(n, l)));
  for (VertexId v = 0; v < n; ++v) {
    if (rng.bernoulli(p)) {
      sets.selected[v] = true;
      ++sets.selected_count;
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    if (sets.selected[v]) continue;
    for (VertexId nb : g.neighbors(v)) {
      if (sets.selected[nb]) {
        sets.neighbors[v] = true;
        break;
      }
    }
  }
  sets.threshold = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(2.0 * p * static_cast<double>(n))));
  return sets;
}

}  // namespace

BoundedCycleReport detect_bounded_cycle(const graph::Graph& g, std::uint32_t k,
                                        const BoundedCycleOptions& options, Rng& rng) {
  EC_REQUIRE(k >= 2, "bounded detection needs k >= 2 (lengths 3..2k)");
  BoundedCycleReport report;
  const VertexId n = g.vertex_count();

  for (std::uint32_t l = 2; l <= k && !(report.cycle_detected && options.stop_on_reject); ++l) {
    const PairSets sets = build_pair_sets(g, l, options.selection_constant, rng);

    for (std::uint32_t length = 2 * l - 1; length <= 2 * l; ++length) {
      if (report.cycle_detected && options.stop_on_reject) break;

      for (std::uint64_t iter = 0; iter < options.repetitions; ++iter) {
        const auto colors = random_coloring(n, length, rng);

        // Light call: color-BFS(length, G[U], c, U, tau).
        ColorBfsSpec light;
        light.cycle_length = length;
        light.threshold = sets.threshold;
        light.colors = &colors;
        light.subgraph = &sets.light;
        light.sources = &sets.light;

        // Merged heavy call: color-BFS(length, G, c, W, tau) with
        // reject-on-overflow (Section 3.5).
        ColorBfsSpec heavy;
        heavy.cycle_length = length;
        heavy.threshold = sets.threshold;
        heavy.colors = &colors;
        heavy.sources = &sets.neighbors;
        heavy.reject_on_overflow = true;
        heavy.overflow_floor = sets.selected_count;

        if (options.low_congestion) {
          const double act = 1.0 / static_cast<double>(std::max<std::uint64_t>(1, sets.threshold));
          light.activation_prob = act;
          light.threshold = 4;
          heavy.activation_prob = act;
          heavy.threshold = 4;
          heavy.reject_on_overflow = false;
        }

        const auto light_out = run_color_bfs(g, light, rng);
        const auto heavy_out = run_color_bfs(g, heavy, rng);

        ++report.iterations_run;
        report.rounds_measured += light_out.rounds_measured + heavy_out.rounds_measured;
        report.rounds_charged += light_out.rounds_charged + heavy_out.rounds_charged;

        if (light_out.rejected || heavy_out.rejected) {
          report.cycle_detected = true;
          // Meet-node rejections witness the exact length; overflow
          // rejections witness "some cycle of length <= 2l".
          const bool overflow_only = !light_out.rejected && heavy_out.meet_rejections == 0 &&
                                     heavy_out.overflow_rejections > 0;
          if (overflow_only) {
            if (report.upper_bound_witnessed == 0) report.upper_bound_witnessed = 2 * l;
          } else if (report.detected_length == 0) {
            report.detected_length = length;
          }
          if (options.stop_on_reject) break;
        }
      }
    }
  }
  return report;
}

}  // namespace evencycle::core
