// The Density Lemma machinery (paper Lemmas 4-7, Figure 1).
//
// This module makes the paper's central combinatorial argument executable:
// given disjoint sets S, W0, V_1..V_{k-1} with every W0-vertex having at
// least k^2 neighbors in S, it
//   1. runs the IN(v)/IN(v,gamma)/OUT(v) sparsification (Eqs. 3-8)
//      bottom-up over the layers,
//   2. finds a witness v with IN(v,0) nonempty, and
//   3. constructs the explicit 2k-cycle P ∪ P' ∪ P'' of Lemma 6 — the
//      object Figure 1 depicts — returning its vertices in cycle order.
// It also computes |W0(v)| per vertex so tests can check the Lemma 7 bound
// |W0(v)| <= 2^{i-1}(k-1)|S| whenever no witness exists.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace evencycle::core {

using graph::VertexId;

inline constexpr std::uint8_t kNoLayer = 0xff;

/// Input partition. layer_of[v] = 0 for W0, i in [1, k-1] for V_i,
/// kNoLayer otherwise; in_s marks S (must be disjoint from layers).
struct DensityInput {
  std::uint32_t k = 2;
  std::vector<bool> in_s;
  std::vector<std::uint8_t> layer_of;
};

class DensityAnalysis {
 public:
  /// Runs the full sparsification (throws InvalidArgument on malformed
  /// partitions: overlapping sets, layer out of range).
  DensityAnalysis(const graph::Graph& g, DensityInput input);

  /// First vertex (layer order, then id) with IN(v,0) nonempty, if any.
  std::optional<VertexId> witness() const { return witness_; }

  /// Lemma 6: constructs the 2k-cycle through S from a witness vertex.
  /// Returns the cycle's vertices in cycle order; the cycle always
  /// intersects S. Requires IN(v,0) nonempty for `v`.
  std::vector<VertexId> construct_cycle(VertexId v) const;

  /// |W0(v)|: W0-vertices reaching v along ascending layer paths.
  std::uint64_t w0_reachable(VertexId v) const;

  /// Lemma 7's bound 2^{i-1}(k-1)|S| for a vertex in layer i.
  std::uint64_t lemma7_bound(VertexId v) const;

  /// Edge sets, exposed for tests (edge ids index into bipartite_edges()).
  const std::vector<std::uint32_t>& in_edges(VertexId v) const { return in_[v]; }
  const std::vector<std::uint32_t>& out_edges(VertexId v) const { return out_[v]; }
  const std::vector<std::uint32_t>& in_zero_edges(VertexId v) const { return in_zero_[v]; }

  /// The S-W0 bipartite edge list; pair = (s, w).
  const std::vector<std::pair<VertexId, VertexId>>& bipartite_edges() const { return edges_; }

  std::uint64_t s_size() const { return s_size_; }

 private:
  struct PeelResult;

  void validate() const;
  void build_bipartite_edges();
  void sparsify();
  std::vector<std::uint32_t> trace_lemma5_path(VertexId v, std::uint32_t edge) const;

  const graph::Graph& g_;
  DensityInput input_;
  std::uint64_t s_size_ = 0;

  std::vector<std::pair<VertexId, VertexId>> edges_;  // E(S, W0): (s, w)
  std::vector<std::vector<std::uint32_t>> incident_;  // per W0 vertex, its edge ids

  std::vector<std::vector<std::uint32_t>> in_;       // IN(v), sorted edge ids
  std::vector<std::vector<std::uint32_t>> out_;      // OUT(v), sorted edge ids
  std::vector<std::vector<std::uint32_t>> in_zero_;  // IN(v,0)
  // All intermediate graphs IN(v,gamma), gamma = 0..2q, kept for the
  // witness's cycle construction. in_levels_[v][gamma].
  std::vector<std::vector<std::vector<std::uint32_t>>> in_levels_;

  std::optional<VertexId> witness_;
};

/// Convenience: derives a DensityInput from Algorithm 1's sets and a
/// coloring, matching Lemma 3's application of Lemma 4: W0 = W ∩ color 0,
/// V_i = (V \ S) ∩ color i (ascending orientation).
DensityInput density_input_from_coloring(const graph::Graph& g, std::uint32_t k,
                                         const std::vector<bool>& selected,
                                         const std::vector<bool>& activator,
                                         const std::vector<std::uint8_t>& colors);

}  // namespace evencycle::core
