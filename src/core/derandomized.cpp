#include "core/derandomized.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace evencycle::core {

namespace {

bool is_prime_u64(std::uint64_t v) {
  if (v < 2) return false;
  if (v % 2 == 0) return v == 2;
  for (std::uint64_t d = 3; d * d <= v; d += 2)
    if (v % d == 0) return false;
  return true;
}

/// Deterministic parameter derivation for member `index`: a is nonzero
/// mod p, b arbitrary, both from SplitMix of the index (public, stateless).
std::pair<std::uint64_t, std::uint64_t> member_params(std::uint64_t index, std::uint64_t prime) {
  std::uint64_t s = index * 0x9e3779b97f4a7c15ULL + 0x243f6a8885a308d3ULL;
  const std::uint64_t a = 1 + splitmix64(s) % (prime - 1);
  const std::uint64_t b = splitmix64(s) % prime;
  return {a, b};
}

}  // namespace

std::uint64_t next_prime(std::uint64_t value) {
  EC_REQUIRE(value >= 2, "next_prime needs value >= 2");
  std::uint64_t v = value;
  while (!is_prime_u64(v)) ++v;
  return v;
}

AffineColoringFamily::AffineColoringFamily(VertexId n, std::uint32_t palette, std::uint64_t size)
    : n_(n), palette_(palette), size_(size) {
  EC_REQUIRE(n >= 1, "family needs a nonempty universe");
  EC_REQUIRE(palette >= 1 && palette <= 255, "palette out of range");
  EC_REQUIRE(size >= 1, "family must be nonempty");
  prime_ = next_prime(std::max<std::uint64_t>(n, palette) + 1);
}

std::uint8_t AffineColoringFamily::color_of(std::uint64_t index, VertexId v) const {
  EC_REQUIRE(index < size_, "family index out of range");
  EC_REQUIRE(v < n_, "vertex out of range");
  const auto [a, b] = member_params(index, prime_);
  using u128 = unsigned __int128;
  const auto h = static_cast<std::uint64_t>(
      (static_cast<u128>(a) * v + b) % prime_);
  return static_cast<std::uint8_t>(h % palette_);
}

std::vector<std::uint8_t> AffineColoringFamily::coloring(std::uint64_t index) const {
  EC_REQUIRE(index < size_, "family index out of range");
  const auto [a, b] = member_params(index, prime_);
  std::vector<std::uint8_t> colors(n_);
  using u128 = unsigned __int128;
  for (VertexId v = 0; v < n_; ++v) {
    const auto h =
        static_cast<std::uint64_t>((static_cast<u128>(a) * v + b) % prime_);
    colors[v] = static_cast<std::uint8_t>(h % palette_);
  }
  return colors;
}

bool AffineColoringFamily::hits_cycle(const std::vector<VertexId>& cycle) const {
  const auto len = cycle.size();
  if (len == 0 || len != palette_) return false;
  for (std::uint64_t index = 0; index < size_; ++index) {
    // Check every rotation and both directions.
    for (std::size_t offset = 0; offset < len; ++offset) {
      bool forward = true, backward = true;
      for (std::size_t i = 0; i < len && (forward || backward); ++i) {
        const auto expected = static_cast<std::uint8_t>(i);
        if (color_of(index, cycle[(offset + i) % len]) != expected) forward = false;
        if (color_of(index, cycle[(offset + len - i) % len]) != expected) backward = false;
      }
      if (forward || backward) return true;
    }
  }
  return false;
}

DetectionReport detect_even_cycle_derandomized(const graph::Graph& g, const Params& params,
                                               const AffineColoringFamily& family, Rng& rng,
                                               const DetectOptions& options) {
  EC_REQUIRE(family.palette() == 2 * params.k, "family palette must be 2k");
  DetectionReport report;
  const AlgorithmSets sets = build_sets(g, params, rng);
  report.light_count = sets.light_count;
  report.selected_count = sets.selected_count;
  report.activator_count = sets.activator_count;

  const std::uint64_t iterations = std::min<std::uint64_t>(params.repetitions, family.size());
  for (std::uint64_t iter = 0; iter < iterations; ++iter) {
    const auto colors = family.coloring(iter);
    const IterationOutcome outcome = run_iteration(g, params, sets, colors, rng, options);
    ++report.iterations_run;
    for (const auto* call : {&outcome.light, &outcome.selected, &outcome.heavy}) {
      report.rounds_measured += call->rounds_measured;
      report.rounds_charged += call->rounds_charged;
      report.max_congestion = std::max(report.max_congestion, call->max_set_size);
      report.threshold_discards += call->discarded_nodes;
      if (call->rejected) {
        report.cycle_detected = true;
        report.rejecting_nodes += call->rejecting_nodes.size();
      }
    }
    if (report.cycle_detected && options.stop_on_reject) break;
  }
  return report;
}

}  // namespace evencycle::core
