#include "core/color_bfs.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace evencycle::core {

std::vector<std::uint8_t> random_coloring(VertexId n, std::uint32_t palette, Rng& rng) {
  EC_REQUIRE(palette >= 1 && palette <= 255, "palette out of range");
  std::vector<std::uint8_t> colors(n);
  for (auto& c : colors) c = static_cast<std::uint8_t>(rng.next_below(palette));
  return colors;
}

namespace {

void sort_unique(std::vector<VertexId>& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

}  // namespace

ColorBfsOutcome run_color_bfs(const graph::Graph& g, const ColorBfsSpec& spec, Rng& rng) {
  const std::uint32_t length = spec.cycle_length;
  EC_REQUIRE(length >= 3, "cycle length must be at least 3");
  EC_REQUIRE(spec.colors != nullptr, "coloring required");
  EC_REQUIRE(spec.colors->size() == g.vertex_count(), "coloring size mismatch");
  EC_REQUIRE(spec.threshold >= 1, "threshold must be positive");

  const auto& colors = *spec.colors;
  const VertexId n = g.vertex_count();
  const std::uint32_t meet = length / 2;       // ascending chain: meet edges
  const std::uint32_t down_len = length - meet; // descending chain edges

  auto in_subgraph = [&](VertexId v) { return spec.subgraph == nullptr || (*spec.subgraph)[v]; };
  auto in_sources = [&](VertexId v) { return spec.sources == nullptr || (*spec.sources)[v]; };

  ColorBfsOutcome outcome;
  outcome.rounds_charged = 1 + static_cast<std::uint64_t>(down_len - 1) * spec.threshold;

  const std::uint64_t overflow_bound =
      spec.reject_on_overflow ? std::max(spec.threshold, spec.overflow_floor) : spec.threshold;

  // Identifier sets per vertex per chain. up_set[v] is only populated while
  // v's color is on the ascending chain, symmetric for down_set.
  std::vector<std::vector<VertexId>> up_set(n);
  std::vector<std::vector<VertexId>> down_set(n);

  auto note_reject = [&](VertexId v) {
    if (!outcome.rejected || outcome.rejecting_nodes.empty() ||
        outcome.rejecting_nodes.back() != v) {
      outcome.rejecting_nodes.push_back(v);
    }
    outcome.rejected = true;
  };

  // --- Round 0: activated color-0 sources send their id to all neighbors
  // in H (Instruction 15 / Algorithm 2 Instruction 1).
  const std::uint8_t up_first = 1;                                      // color after 0, ascending
  const std::uint8_t down_first = static_cast<std::uint8_t>(length - 1); // color after 0, descending
  for (VertexId x = 0; x < n; ++x) {
    if (!in_subgraph(x) || !in_sources(x) || colors[x] != 0) continue;
    if (spec.forced_activation != nullptr) {
      if (!(*spec.forced_activation)[x]) continue;
    } else if (spec.activation_prob < 1.0 && !rng.bernoulli(spec.activation_prob)) {
      continue;
    }
    ++outcome.activated_sources;
    for (VertexId nb : g.neighbors(x)) {
      if (!in_subgraph(nb)) continue;
      if (colors[nb] == up_first) up_set[nb].push_back(x);
      if (colors[nb] == down_first) down_set[nb].push_back(x);
    }
  }

  // Vertices grouped by color, for layered processing.
  std::vector<std::vector<VertexId>> layer(length);
  for (VertexId v = 0; v < n; ++v)
    if (in_subgraph(v)) layer[colors[v]].push_back(v);

  // --- Forwarding phases. Window t moves the ascending frontier from
  // color t to t+1 (while t <= meet-1) and the descending frontier from
  // color (length - t) mod length to length - t - 1 (while t <= down_len-1).
  // Both chains share the window; its measured length is the largest set
  // actually streamed during it.
  const std::uint32_t windows = down_len - 1;
  for (std::uint32_t t = 1; t <= windows; ++t) {
    std::uint64_t window_len = 0;

    // Ascending: nodes colored t forward to color t+1 (t runs to meet-1).
    if (t <= meet - 1) {
      const std::uint8_t from = static_cast<std::uint8_t>(t);
      const std::uint8_t to = static_cast<std::uint8_t>(t + 1);
      for (VertexId v : layer[from]) {
        auto& ids = up_set[v];
        if (ids.empty()) continue;
        sort_unique(ids);
        outcome.max_set_size = std::max<std::uint64_t>(outcome.max_set_size, ids.size());
        if (ids.size() > overflow_bound && spec.reject_on_overflow) {
          note_reject(v);
          ++outcome.overflow_rejections;
          continue;
        }
        if (ids.size() > spec.threshold) {  // Instruction 19: discard
          ++outcome.discarded_nodes;
          continue;
        }
        window_len = std::max<std::uint64_t>(window_len, ids.size());
        for (VertexId nb : g.neighbors(v)) {
          if (!in_subgraph(nb) || colors[nb] != to) continue;
          outcome.identifiers_forwarded += ids.size();
          up_set[nb].insert(up_set[nb].end(), ids.begin(), ids.end());
        }
      }
    }

    // Descending: nodes colored length-t forward to color length-t-1.
    {
      const std::uint8_t from = static_cast<std::uint8_t>(length - t);
      const std::uint8_t to = static_cast<std::uint8_t>(length - t - 1);
      for (VertexId v : layer[from]) {
        auto& ids = down_set[v];
        if (ids.empty()) continue;
        sort_unique(ids);
        outcome.max_set_size = std::max<std::uint64_t>(outcome.max_set_size, ids.size());
        if (ids.size() > overflow_bound && spec.reject_on_overflow) {
          note_reject(v);
          ++outcome.overflow_rejections;
          continue;
        }
        if (ids.size() > spec.threshold) {
          ++outcome.discarded_nodes;
          continue;
        }
        window_len = std::max<std::uint64_t>(window_len, ids.size());
        for (VertexId nb : g.neighbors(v)) {
          if (!in_subgraph(nb) || colors[nb] != to) continue;
          outcome.identifiers_forwarded += ids.size();
          down_set[nb].insert(down_set[nb].end(), ids.begin(), ids.end());
        }
      }
    }

    outcome.rounds_measured += window_len;
  }
  outcome.rounds_measured += 1;  // the source round

  // --- Detection (Instructions 24-28): a meet-colored node holding the
  // same identifier on both chains rejects.
  for (VertexId v : layer[meet]) {
    auto& up = up_set[v];
    auto& down = down_set[v];
    if (up.empty() || down.empty()) continue;
    sort_unique(up);
    sort_unique(down);
    // The meet node is itself subject to the receive model: it accumulated
    // these sets over the chains' final windows; no further forwarding.
    std::size_t i = 0, j = 0;
    bool hit = false;
    while (i < up.size() && j < down.size()) {
      if (up[i] < down[j]) {
        ++i;
      } else if (down[j] < up[i]) {
        ++j;
      } else {
        hit = true;
        outcome.witnesses.push_back({v, up[i]});
        break;
      }
    }
    if (hit) {
      note_reject(v);
      ++outcome.meet_rejections;
    }
  }

  sort_unique(outcome.rejecting_nodes);
  return outcome;
}

namespace {

/// Layered BFS along one chain: from `source`, step through the color
/// sequence `chain` (chain[0] is the color of the first hop) inside the
/// subgraph mask; returns the vertex path source..meet or nullopt.
std::optional<std::vector<VertexId>> chain_path(const graph::Graph& g, const ColorBfsSpec& spec,
                                                VertexId source, VertexId meet,
                                                const std::vector<std::uint8_t>& chain) {
  const auto& colors = *spec.colors;
  auto in_subgraph = [&](VertexId v) { return spec.subgraph == nullptr || (*spec.subgraph)[v]; };
  std::vector<VertexId> parent(g.vertex_count(), graph::kInvalidVertex);
  std::vector<VertexId> frontier{source};
  for (std::size_t step = 0; step < chain.size(); ++step) {
    std::vector<VertexId> next;
    const bool last = step + 1 == chain.size();
    for (VertexId v : frontier) {
      for (VertexId nb : g.neighbors(v)) {
        if (!in_subgraph(nb) || colors[nb] != chain[step]) continue;
        if (last) {
          if (nb != meet) continue;
        } else if (parent[nb] != graph::kInvalidVertex || nb == source) {
          continue;
        }
        if (parent[nb] == graph::kInvalidVertex) {
          parent[nb] = v;
          next.push_back(nb);
        }
        if (last && nb == meet) {
          std::vector<VertexId> path{meet};
          VertexId cur = meet;
          while (cur != source) {
            cur = parent[cur];
            path.push_back(cur);
          }
          std::reverse(path.begin(), path.end());
          return path;
        }
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::vector<VertexId>> reconstruct_witness_cycle(const graph::Graph& g,
                                                               const ColorBfsSpec& spec,
                                                               const Witness& witness) {
  EC_REQUIRE(spec.colors != nullptr && spec.colors->size() == g.vertex_count(),
             "coloring required");
  const std::uint32_t length = spec.cycle_length;
  EC_REQUIRE(length >= 3, "cycle length must be at least 3");
  const std::uint32_t meet_color = length / 2;
  const auto& colors = *spec.colors;
  if (witness.source >= g.vertex_count() || witness.meet >= g.vertex_count()) return std::nullopt;
  if (colors[witness.source] != 0 || colors[witness.meet] != meet_color) return std::nullopt;

  // Ascending chain colors 1..meet; descending L-1, L-2, ..., meet.
  std::vector<std::uint8_t> up_chain, down_chain;
  for (std::uint32_t c = 1; c <= meet_color; ++c) up_chain.push_back(static_cast<std::uint8_t>(c));
  for (std::uint32_t c = length - 1; c >= meet_color; --c)
    down_chain.push_back(static_cast<std::uint8_t>(c));

  const auto up = chain_path(g, spec, witness.source, witness.meet, up_chain);
  const auto down = chain_path(g, spec, witness.source, witness.meet, down_chain);
  if (!up.has_value() || !down.has_value()) return std::nullopt;

  // Assemble: source, up interior..., meet, down interior reversed...
  std::vector<VertexId> cycle(up->begin(), up->end());  // source .. meet
  for (std::size_t i = down->size() - 1; i >= 1; --i) {
    if (i == down->size() - 1) continue;  // meet already present
    cycle.push_back((*down)[i]);
  }
  return cycle;
}

}  // namespace evencycle::core
