// {C_ell | 3 <= ell <= 2k}-freeness (paper Section 3.5).
//
// Following [10] as modified by the paper, lengths are checked in pairs
// (2l-1, 2l) for l = 2..k, each pair assuming no cycle of length <= 2(l-1)
// exists (otherwise an earlier pair already rejected). Differences from
// Algorithm 1, per the paper:
//   * W is the set of *all* neighbors of S (no degree requirement);
//   * threshold tau = 2 n p;
//   * the heavy search runs on the whole graph G with sources W, and a
//     node that collects more than max(tau, |S|) identifiers *rejects*:
//     two of its sources share a selected neighbor, pigeonholing a closed
//     walk of length <= 2l (see DESIGN.md for the |S| floor, which keeps
//     the rejection one-sided exactly).
// Triangles (l such that 2l-1 = 3) are covered by the odd member of the
// first pair.
#pragma once

#include <cstdint>
#include <vector>

#include "core/color_bfs.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace evencycle::core {

struct BoundedCycleOptions {
  /// Colorings per (length, call) combination.
  std::uint64_t repetitions = 64;
  /// Multiplier c in p = min(1, c * l^2 / n^{1/l}).
  double selection_constant = 2.0;
  bool stop_on_reject = true;

  /// Congestion-reduced variant fed to quantum amplification (Section 3.5
  /// quantizes both the light and the heavy searches): sources activate
  /// with probability 1/tau and the threshold drops to 4; the overflow
  /// rejection rule is disabled (it needs tau >= |S|). Success probability
  /// drops to Theta(1/tau), rounds to O(1) per call.
  bool low_congestion = false;
};

struct BoundedCycleReport {
  bool cycle_detected = false;
  /// Exact length witnessed by a meet-node rejection (0 if none); overflow
  /// rejections instead set upper_bound_witnessed.
  std::uint32_t detected_length = 0;
  /// Smallest 2l for which an overflow rejection fired (0 if none).
  std::uint32_t upper_bound_witnessed = 0;

  std::uint64_t rounds_measured = 0;
  std::uint64_t rounds_charged = 0;
  std::uint64_t iterations_run = 0;
};

/// Decides {C_ell | 3 <= ell <= 2k}-freeness ("is there a cycle of length
/// at most 2k?"): one-sided — a true result always witnesses a short cycle.
BoundedCycleReport detect_bounded_cycle(const graph::Graph& g, std::uint32_t k,
                                        const BoundedCycleOptions& options, Rng& rng);

}  // namespace evencycle::core
