// color-BFS with threshold (paper Section 2.1.1, Instructions 14-29),
// generalized to any target cycle length and to the randomized activation
// of Algorithm 2.
//
// This is the phase-level reference implementation: it computes exactly the
// identifier sets I_v the message-level protocol computes, and charges
// rounds by the CONGEST streaming schedule (a node forwarding |I_v|
// identifiers occupies |I_v| rounds of its incident links; phases of the
// two chains run concurrently). `engine_color_bfs.hpp` provides the
// faithful message-level protocol; tests assert both produce identical
// rejection sets.
//
// Chain layout for target length L with colors {0..L-1}:
//   ascending:  0 -> 1 -> ... -> meet          (meet = floor(L/2) edges)
//   descending: 0 -> L-1 -> L-2 -> ... -> meet (ceil(L/2) edges)
// A node colored `meet` rejects when some identifier arrives over both
// chains; the two well-colored paths have color-disjoint interiors, so a
// rejection always witnesses a simple cycle of length exactly L (one-sided
// soundness, paper "Acceptance without error").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace evencycle::core {

using graph::VertexId;

struct ColorBfsSpec {
  /// Target cycle length L >= 3 (2k in Algorithm 1, 2k+1 in Section 3.4).
  std::uint32_t cycle_length = 4;

  /// Threshold tau: a node discards I_v when |I_v| > tau (Instruction 19).
  std::uint64_t threshold = 0;

  /// Activation probability of color-0 sources (Algorithm 2 Instruction 1;
  /// 1.0 reproduces the deterministic Instruction 15).
  double activation_prob = 1.0;

  /// Bounded-length variant (Section 3.5): a node whose I_v overflows
  /// max(threshold, overflow_floor) *rejects* instead of discarding — an
  /// overflow pigeonholes two sources onto one selected vertex and thus
  /// witnesses a short cycle. overflow_floor is set to |S| by the caller to
  /// keep the rejection sound (see DESIGN.md).
  bool reject_on_overflow = false;
  std::uint64_t overflow_floor = 0;

  /// Pre-drawn activation decisions (per vertex). When set, overrides
  /// activation_prob; used to compare the phase-level and message-level
  /// implementations on identical randomness.
  const std::vector<bool>* forced_activation = nullptr;

  /// H: nullptr = whole graph, else per-vertex membership mask.
  const std::vector<bool>* subgraph = nullptr;
  /// X: nullptr = all vertices of H, else per-vertex membership mask.
  const std::vector<bool>* sources = nullptr;
  /// c: per-vertex colors in {0..L-1}; required.
  const std::vector<std::uint8_t>* colors = nullptr;
};

/// A rejection certificate: the meet-colored node together with the source
/// whose identifier arrived over both chains. The pair determines a simple
/// cycle of the target length (reconstructible with
/// reconstruct_witness_cycle).
struct Witness {
  VertexId meet = 0;
  VertexId source = 0;
  friend bool operator==(const Witness&, const Witness&) = default;
};

struct ColorBfsOutcome {
  bool rejected = false;
  std::vector<VertexId> rejecting_nodes;
  /// Meet-rule certificates (one per meet rejection; overflow rejections
  /// carry no source pair).
  std::vector<Witness> witnesses;

  /// 1 (source round) + sum of measured phase-window lengths.
  std::uint64_t rounds_measured = 0;
  /// 1 + (ceil(L/2) - 1) * tau — the paper's worst-case charge.
  std::uint64_t rounds_charged = 0;

  /// Rejections triggered by the overflow rule (Section 3.5) rather than a
  /// meet-node identifier match; disjointly counted from meet rejections.
  std::uint64_t overflow_rejections = 0;
  std::uint64_t meet_rejections = 0;

  std::uint64_t activated_sources = 0;
  std::uint64_t max_set_size = 0;          ///< max |I_v| before thresholding
  std::uint64_t discarded_nodes = 0;       ///< nodes that hit the threshold
  std::uint64_t identifiers_forwarded = 0; ///< total words sent in forwards
};

ColorBfsOutcome run_color_bfs(const graph::Graph& g, const ColorBfsSpec& spec, Rng& rng);

/// Uniform coloring in {0..L-1} (Instruction 8).
std::vector<std::uint8_t> random_coloring(VertexId n, std::uint32_t palette, Rng& rng);

/// Rebuilds the explicit simple cycle certified by a witness: a BFS along
/// the ascending chain (colors 0,1,...,meet) from the source to the meet
/// node, a BFS along the descending chain (colors 0, L-1, ..., meet+1,
/// meet), both inside the spec's subgraph mask. The interiors have disjoint
/// color ranges, so the union is simple. Returns nullopt only if the
/// witness does not certify a cycle under this spec (i.e. it is forged).
std::optional<std::vector<VertexId>> reconstruct_witness_cycle(const graph::Graph& g,
                                                               const ColorBfsSpec& spec,
                                                               const Witness& witness);

}  // namespace evencycle::core
