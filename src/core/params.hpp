// Parameterization of Algorithm 1 (paper Section 2.1.2, Instructions 1-6).
//
// The paper's constants are chosen for proof convenience and are
// astronomically large (K = eps_hat * (2k)^{2k} colorings, tau with a
// k * 2^k factor). `Params::theory` reproduces them exactly; tests and
// benches mostly use `Params::practical`, which keeps every functional form
// (p ~ k^2 / n^{1/k}, tau ~ k 2^k n p, |S| ~ n^{1-1/k}) but lets the
// experiment choose the repetition budget. Practical profiles never affect
// soundness — the algorithms stay one-sided for every parameter choice —
// they only trade detection probability for rounds.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace evencycle::core {

using graph::VertexId;

struct PracticalTuning {
  /// Multiplier c in p = min(1, c * k^2 / n^{1/k}).
  double selection_constant = 2.0;
  /// Number of random colorings (paper: eps_hat * (2k)^{2k}); 0 = use the
  /// theory value capped at repetition_cap.
  std::uint64_t repetitions = 0;
  std::uint64_t repetition_cap = 256;
};

struct Params {
  std::uint32_t k = 2;                  ///< target cycle C_{2k}
  double epsilon = 1.0 / 3.0;           ///< one-sided error target
  double eps_hat = 0.0;                 ///< ln(3/epsilon)
  double selection_prob = 0.0;          ///< p, Instruction 2
  std::uint64_t repetitions = 0;        ///< K, Instruction 6
  std::uint64_t threshold = 0;          ///< tau = k * 2^k * n * p, Instruction 6
  std::uint64_t light_degree_bound = 0; ///< n^{1/k}, Instruction 1
  std::uint32_t activator_degree = 0;   ///< k^2, Instruction 5

  /// Paper-exact parameters (Theorem 1 constants).
  static Params theory(std::uint32_t k, VertexId n, double epsilon = 1.0 / 3.0);

  /// Same functional forms with a feasible repetition budget.
  static Params practical(std::uint32_t k, VertexId n, const PracticalTuning& tuning = {});
};

/// ceil(n^{1/k}) computed without floating-point drift at integer boundaries.
std::uint64_t ceil_root(std::uint64_t n, std::uint32_t k);

}  // namespace evencycle::core
