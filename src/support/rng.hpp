// Deterministic, seedable random number generation.
//
// All randomized components of the library draw from evencycle::Rng so that
// every experiment is reproducible from a single 64-bit seed. The generator
// is xoshiro256++ seeded via SplitMix64, following the reference
// implementations by Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace evencycle {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); bound must be positive.
  /// Uses Lemire's nearly-divisionless rejection method.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Exponential with rate lambda > 0.
  double exponential(double lambda) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Sample `count` distinct values from [0, universe) (Floyd's algorithm
  /// would be fancier; we use partial shuffle which is fine at our sizes).
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t universe,
                                                        std::uint32_t count);

  /// Derive an independent child generator (for per-repetition streams).
  Rng split() noexcept {
    return Rng((*this)() ^ 0xd1b54a32d192ed03ULL);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace evencycle
