#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

namespace evencycle {

Summary summarize(const std::vector<double>& sample) {
  Summary s;
  s.count = sample.size();
  if (sample.empty()) return s;
  double sum = 0.0;
  s.min = sample.front();
  s.max = sample.front();
  for (double v : sample) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(sample.size());
  double ss = 0.0;
  for (double v : sample) ss += (v - s.mean) * (v - s.mean);
  s.stddev = sample.size() > 1 ? std::sqrt(ss / static_cast<double>(sample.size() - 1)) : 0.0;
  s.median = quantile(sample, 0.5);
  s.p90 = quantile(sample, 0.9);
  return s;
}

double quantile(std::vector<double> sample, double q) {
  if (sample.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(sample.begin(), sample.end());
  const double pos = q * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

PowerFit fit_power_law(const std::vector<double>& x, const std::vector<double>& y) {
  PowerFit fit;
  const std::size_t n = std::min(x.size(), y.size());
  std::vector<double> lx, ly;
  lx.reserve(n);
  ly.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (x[i] > 0.0 && y[i] > 0.0) {
      lx.push_back(std::log(x[i]));
      ly.push_back(std::log(y[i]));
    }
  }
  fit.points = lx.size();
  if (fit.points < 2) return fit;
  const auto m = static_cast<double>(fit.points);
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < fit.points; ++i) {
    sx += lx[i];
    sy += ly[i];
    sxx += lx[i] * lx[i];
    sxy += lx[i] * ly[i];
    syy += ly[i] * ly[i];
  }
  const double denom = m * sxx - sx * sx;
  if (denom == 0.0) return fit;
  fit.exponent = (m * sxy - sx * sy) / denom;
  const double intercept = (sy - fit.exponent * sx) / m;
  fit.constant = std::exp(intercept);
  const double sst = syy - sy * sy / m;
  if (sst > 0.0) {
    double sse = 0.0;
    for (std::size_t i = 0; i < fit.points; ++i) {
      const double pred = fit.exponent * lx[i] + intercept;
      sse += (ly[i] - pred) * (ly[i] - pred);
    }
    fit.r_squared = 1.0 - sse / sst;
  } else {
    fit.r_squared = 1.0;
  }
  return fit;
}

double wilson_lower_bound(std::size_t successes, std::size_t trials, double z) {
  if (trials == 0) return 0.0;
  const auto n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = phat + z2 / (2.0 * n);
  const double margin = z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n));
  return std::max(0.0, (center - margin) / denom);
}

}  // namespace evencycle
