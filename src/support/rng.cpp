#include "support/rng.hpp"

#include <cmath>

#include "support/check.hpp"

namespace evencycle {

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire, "Fast random integer generation in an interval" (2019).
  using u128 = unsigned __int128;
  std::uint64_t x = (*this)();
  u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<u128>(x) * static_cast<u128>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double lambda) noexcept {
  if (lambda <= 0.0) return 0.0;
  double u = uniform01();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t universe,
                                                           std::uint32_t count) {
  EC_REQUIRE(count <= universe, "cannot sample more values than the universe holds");
  // Floyd's algorithm: O(count) expected, no O(universe) allocation when
  // count is small; fall back to partial shuffle when dense.
  std::vector<std::uint32_t> result;
  result.reserve(count);
  if (count * 2 >= universe) {
    std::vector<std::uint32_t> all(universe);
    for (std::uint32_t i = 0; i < universe; ++i) all[i] = i;
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto j = i + static_cast<std::uint32_t>(next_below(universe - i));
      std::swap(all[i], all[j]);
      result.push_back(all[i]);
    }
    return result;
  }
  // Floyd: iterate j = universe-count .. universe-1, insert random t in [0, j]
  // or j itself if t already chosen. Use a sorted vector as the "set".
  std::vector<std::uint32_t> chosen;
  chosen.reserve(count);
  for (std::uint32_t j = universe - count; j < universe; ++j) {
    const auto t = static_cast<std::uint32_t>(next_below(j + 1));
    bool already = false;
    for (auto v : chosen) {
      if (v == t) {
        already = true;
        break;
      }
    }
    chosen.push_back(already ? j : t);
  }
  return chosen;
}

}  // namespace evencycle
