// Small statistics helpers used by tests and benchmark harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace evencycle {

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p90 = 0.0;
};

/// Computes a Summary; an empty sample yields an all-zero Summary.
Summary summarize(const std::vector<double>& sample);

/// Quantile by linear interpolation on the sorted sample, q in [0,1].
double quantile(std::vector<double> sample, double q);

/// Least-squares fit of log(y) = slope*log(x) + intercept.
///
/// Used to recover empirical complexity exponents: if rounds ~ c*n^a then
/// the fitted slope estimates a. Points with x<=0 or y<=0 are skipped.
struct PowerFit {
  double exponent = 0.0;   ///< fitted slope in log-log space
  double constant = 0.0;   ///< exp(intercept)
  double r_squared = 0.0;  ///< goodness of fit in log-log space
  std::size_t points = 0;
};

PowerFit fit_power_law(const std::vector<double>& x, const std::vector<double>& y);

/// Wilson score interval lower bound for a binomial proportion, used to
/// assert detection rates without flaky tests.
double wilson_lower_bound(std::size_t successes, std::size_t trials, double z = 3.0);

}  // namespace evencycle
