// Lightweight runtime checking for simulation invariants.
//
// The CONGEST engine uses these to turn protocol bugs (e.g. bandwidth
// violations) into hard errors rather than silently wrong round counts.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace evencycle {

/// Raised when a simulated protocol violates a model invariant
/// (bandwidth overflow, message to a non-neighbor, ...).
class SimulationError : public std::runtime_error {
 public:
  explicit SimulationError(const std::string& what) : std::runtime_error(what) {}
};

/// Raised on invalid arguments to library entry points.
class InvalidArgument : public std::invalid_argument {
 public:
  explicit InvalidArgument(const std::string& what) : std::invalid_argument(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* kind, const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  if (std::string(kind) == "EC_SIM_CHECK") throw SimulationError(os.str());
  throw InvalidArgument(os.str());
}
}  // namespace detail

}  // namespace evencycle

/// Argument validation; throws evencycle::InvalidArgument.
#define EC_REQUIRE(cond, msg)                                                     \
  do {                                                                            \
    if (!(cond))                                                                  \
      ::evencycle::detail::throw_check_failure("EC_REQUIRE", #cond, __FILE__,     \
                                               __LINE__, (msg));                  \
  } while (false)

/// Simulation-model invariant; throws evencycle::SimulationError.
#define EC_SIM_CHECK(cond, msg)                                                   \
  do {                                                                            \
    if (!(cond))                                                                  \
      ::evencycle::detail::throw_check_failure("EC_SIM_CHECK", #cond, __FILE__,   \
                                               __LINE__, (msg));                  \
  } while (false)
