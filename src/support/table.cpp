#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace evencycle {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::integer(double value) {
  std::ostringstream os;
  os << static_cast<long long>(std::llround(value));
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  auto print_rule = [&] {
    os << "+";
    for (std::size_t c = 0; c < header_.size(); ++c) os << std::string(widths[c] + 2, '-') << "+";
    os << '\n';
  };

  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

void print_banner(std::ostream& os, const std::string& title) {
  os << '\n' << std::string(title.size() + 8, '=') << '\n'
     << "==  " << title << "  ==\n"
     << std::string(title.size() + 8, '=') << '\n';
}

}  // namespace evencycle
