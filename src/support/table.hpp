// Plain-text table rendering for benchmark harness output.
//
// The Table 1 / Figure 1 reproduction benches print aligned ASCII tables
// matching the rows the paper reports; this keeps their output readable
// without pulling in a formatting dependency.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace evencycle {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; it is padded/truncated to the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 3);
  static std::string integer(double value);

  void print(std::ostream& os) const;
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner used by the bench binaries.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace evencycle
