// Stable detection facade: the one entry point the CLI `run` path, the
// scenario harness, the bench wrappers, the examples, and the `serve`
// service all consume.
//
// The shape is load-once / query-many:
//
//   GraphHandle    an immutable graph plus its identity (a human-readable
//                  name, the generation spec if any, and a content hash
//                  over the edge set). Build it once — from a generator
//                  family or an existing Graph — and run any number of
//                  DetectionRequests against it. The service's graph cache
//                  (src/service/graph_cache.hpp) stores exactly these.
//   DetectionRequest -> DetectionResult
//                  one detection query: detector name, cycle parameter k,
//                  randomness seed, and an engine thread budget. Results
//                  carry a structured ErrorCode instead of escaping
//                  exceptions, so callers multiplexing many queries (the
//                  service, the soak scenario) never crash on one bad
//                  request.
//
// Determinism contract: every field of DetectionResult except `seconds` is
// a pure function of (graph content, request). In particular the thread
// budget must not change the payload — engine-hosted detectors inherit the
// round engine's bit-identical-at-any-thread-count guarantee.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "harness/json.hpp"
#include "harness/scenario.hpp"
#include "support/rng.hpp"

namespace evencycle::api {

using graph::VertexId;

/// Structured failure taxonomy of the facade (and the wire protocol, which
/// maps these 1:1 onto response error codes).
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kUnknownFamily,     ///< graph family not in the generator palette
  kUnknownDetector,   ///< detector name not in the detector palette
  kBadRequest,        ///< malformed parameters (k = 0, oversized nodes, ...)
  kExecutionFailed,   ///< the detector itself threw (InvalidArgument, ...)
  kDeadlineExceeded,  ///< DetectionRequest::deadline_ms expired (wall clock)
  kBudgetExceeded,    ///< max_rounds / max_messages budget exhausted (deterministic)
  kOverloaded,        ///< shed by service admission control; retry later
};

/// Stable kebab-case name of an error code ("ok", "unknown-detector", ...).
const char* error_code_name(ErrorCode code);

/// How a GraphHandle came to be; doubles as the graph-cache key material.
struct GraphSpec {
  std::string family;      ///< generator palette name ("planted-light", ...)
  std::uint64_t nodes = 0; ///< requested scale (exact count may differ)
  std::uint32_t k = 2;     ///< shapes planted / girth-controlled families
  std::uint64_t seed = 0;  ///< generator randomness

  /// "family/nodes/k/seed" — unique per spec, used as the cache key.
  std::string key() const;
};

/// An immutable graph with identity: generate or adopt once, query many
/// times. Copies share the underlying Graph (shared_ptr semantics).
class GraphHandle {
 public:
  GraphHandle() = default;

  /// Builds the graph from a generator-palette family. Throws
  /// InvalidArgument on an unknown family (detect() callers that want an
  /// ErrorCode instead go through try_generate).
  static GraphHandle generate(const GraphSpec& spec);

  /// Like generate, but reports an unknown family / bad spec as an
  /// ErrorCode instead of throwing. Returns kOk on success.
  static ErrorCode try_generate(const GraphSpec& spec, GraphHandle* out,
                                std::string* error);

  /// Wraps an existing graph (real-graph ingestion, tests).
  static GraphHandle adopt(graph::Graph g, std::string name);

  /// Wraps an already-shared graph without copying it — the service graph
  /// cache aliases one stored graph across equal-content specs this way.
  static GraphHandle alias(std::shared_ptr<const graph::Graph> g, std::string name);

  bool valid() const { return graph_ != nullptr; }
  const graph::Graph& graph() const { return *graph_; }
  std::shared_ptr<const graph::Graph> share() const { return graph_; }

  /// Human-readable identity: the spec key for generated handles, the
  /// adopted name otherwise.
  const std::string& name() const { return name_; }

  /// FNV-1a over the vertex count and the sorted undirected edge list:
  /// equal graphs hash equal on every platform. Computed once at build.
  std::uint64_t content_hash() const { return content_hash_; }

 private:
  std::shared_ptr<const graph::Graph> graph_;
  std::string name_;
  std::uint64_t content_hash_ = 0;
};

/// Exact content hash a GraphHandle stores (exposed for cache tests).
std::uint64_t graph_content_hash(const graph::Graph& g);

/// One detection query against a GraphHandle.
struct DetectionRequest {
  std::string detector = "even-cycle";  ///< detector palette name
  std::uint32_t k = 2;                  ///< target cycle length 2k
  std::uint64_t seed = 0;               ///< randomness; same seed = same payload
  /// Engine thread budget for engine-hosted detectors (0 = engine default,
  /// i.e. EVENCYCLE_THREADS). MUST NOT change the deterministic payload.
  std::uint32_t threads = 0;
  /// Service fairness key; ignored by detect() itself.
  std::string tenant;

  // Cooperative cancellation (all zero = unlimited). The round and message
  // budgets are deterministic: engine-hosted detectors stop at the budgeted
  // round boundary (bit-identical at every thread count), palette detectors
  // are charged post-hoc against their deterministic round/message counts.
  // Either way the query comes back as kBudgetExceeded carrying the
  // measured counters. deadline_ms is wall clock, measured from detect()
  // entry and checked at engine round boundaries — inherently
  // non-deterministic, reported as kDeadlineExceeded.
  std::uint64_t max_rounds = 0;
  std::uint64_t max_messages = 0;
  std::uint64_t deadline_ms = 0;
};

/// Detection outcome plus structured error. All fields except `seconds`
/// are deterministic in (graph, request).
struct DetectionResult {
  ErrorCode code = ErrorCode::kOk;
  std::string error;  ///< non-empty iff code != kOk

  bool detected = false;
  std::uint64_t rounds_measured = 0;
  std::uint64_t rounds_charged = 0;
  std::uint64_t messages = 0;
  std::uint64_t congestion = 0;
  harness::Series extra;  ///< detector-specific deterministic metrics

  double seconds = 0.0;  ///< wall time; excluded from the payload JSON

  bool ok() const { return code == ErrorCode::kOk; }
};

/// Runs one detection query. Never throws for request-level problems —
/// unknown detectors, bad parameters, and detector exceptions all come
/// back as a DetectionResult with code != kOk.
DetectionResult detect(const GraphHandle& graph, const DetectionRequest& request);

/// Detector palette names accepted by DetectionRequest::detector: the
/// harness algorithm palette plus "engine-color-bfs" (the message-level
/// color-BFS hosted on the round engine, honoring the thread budget).
std::vector<std::string> detector_names();

/// Generator family names accepted by GraphSpec::family for a given k.
std::vector<std::string> family_names(std::uint32_t k);

/// Deterministic JSON payload of a result: detected / rounds / messages /
/// congestion / extra (and error fields when !ok). `with_timing` appends
/// the wall-time field; leave it off wherever byte-identity matters.
harness::JsonValue result_to_json(const DetectionResult& result, bool with_timing = false);

/// Entry point of the thin bench wrappers and any embedder that wants the
/// full `evencycle run <name>` behavior (flags, text/JSON output, summary
/// gates) without touching harness internals.
int scenario_cli(const std::string& scenario, int argc, char** argv);

}  // namespace evencycle::api
