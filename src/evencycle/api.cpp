#include "evencycle/api.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "congest/network.hpp"
#include "core/color_bfs.hpp"
#include "core/engine_color_bfs.hpp"
#include "core/params.hpp"
#include "harness/cli.hpp"
#include "harness/palette.hpp"
#include "support/check.hpp"

namespace evencycle::api {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kUnknownFamily: return "unknown-family";
    case ErrorCode::kUnknownDetector: return "unknown-detector";
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kExecutionFailed: return "execution-failed";
    case ErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case ErrorCode::kBudgetExceeded: return "budget-exceeded";
    case ErrorCode::kOverloaded: return "overloaded";
  }
  return "unknown";
}

std::string GraphSpec::key() const {
  return family + "/" + std::to_string(nodes) + "/" + std::to_string(k) + "/" +
         std::to_string(seed);
}

std::uint64_t graph_content_hash(const graph::Graph& g) {
  // FNV-1a over (n, sorted edge endpoints). Graph stores endpoints with
  // first < second and edge ids in insertion-independent CSR order, so two
  // equal graphs produce identical byte streams.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const auto mix = [&hash](std::uint64_t word) {
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (word >> shift) & 0xFF;
      hash *= 0x100000001b3ULL;
    }
  };
  mix(g.vertex_count());
  std::vector<std::pair<graph::VertexId, graph::VertexId>> edges;
  edges.reserve(g.edge_count());
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) edges.push_back(g.edge(e));
  std::sort(edges.begin(), edges.end());
  for (const auto& [u, v] : edges) {
    mix(u);
    mix(v);
  }
  return hash;
}

GraphHandle GraphHandle::generate(const GraphSpec& spec) {
  GraphHandle handle;
  std::string error;
  const ErrorCode code = try_generate(spec, &handle, &error);
  EC_REQUIRE(code == ErrorCode::kOk, error);
  return handle;
}

ErrorCode GraphHandle::try_generate(const GraphSpec& spec, GraphHandle* out,
                                    std::string* error) {
  if (spec.k == 0 || spec.k > 16) {
    if (error != nullptr) *error = "k must be in [1, 16], got " + std::to_string(spec.k);
    return ErrorCode::kBadRequest;
  }
  if (spec.nodes == 0 || spec.nodes > 0xFFFFFFFFULL) {
    if (error != nullptr)
      *error = "nodes must be in [1, 2^32), got " + std::to_string(spec.nodes);
    return ErrorCode::kBadRequest;
  }
  const auto& palette = harness::generator_palette(spec.k);
  const auto entry =
      std::find_if(palette.begin(), palette.end(),
                   [&](const harness::NamedGenerator& g) { return g.name == spec.family; });
  if (entry == palette.end()) {
    if (error != nullptr) *error = "unknown graph family: " + spec.family;
    return ErrorCode::kUnknownFamily;
  }
  try {
    Rng rng(spec.seed);
    GraphHandle handle;
    handle.graph_ = std::make_shared<const graph::Graph>(
        entry->build(static_cast<VertexId>(spec.nodes), rng));
    handle.name_ = spec.key();
    handle.content_hash_ = graph_content_hash(*handle.graph_);
    *out = std::move(handle);
    return ErrorCode::kOk;
  } catch (const std::exception& e) {
    if (error != nullptr) *error = std::string("generator failed: ") + e.what();
    return ErrorCode::kBadRequest;
  }
}

GraphHandle GraphHandle::adopt(graph::Graph g, std::string name) {
  GraphHandle handle;
  handle.graph_ = std::make_shared<const graph::Graph>(std::move(g));
  handle.name_ = std::move(name);
  handle.content_hash_ = graph_content_hash(*handle.graph_);
  return handle;
}

GraphHandle GraphHandle::alias(std::shared_ptr<const graph::Graph> g, std::string name) {
  GraphHandle handle;
  handle.graph_ = std::move(g);
  handle.name_ = std::move(name);
  handle.content_hash_ = handle.graph_ != nullptr ? graph_content_hash(*handle.graph_) : 0;
  return handle;
}

namespace {

/// The message-level color-BFS on the round engine: the one detector whose
/// execution actually spans the thread budget. The coloring comes from the
/// request seed; the engine guarantees a bit-identical outcome at every
/// thread count, which is what keeps `threads` out of the payload.
DetectionResult run_engine_color_bfs(const graph::Graph& g, const DetectionRequest& request) {
  DetectionResult result;
  const VertexId n = g.vertex_count();
  Rng rng(request.seed);
  const auto params = core::Params::practical(request.k, std::max<VertexId>(n, 4));
  const auto colors = core::random_coloring(n, 2 * request.k, rng);
  core::ColorBfsSpec spec;
  spec.cycle_length = 2 * request.k;
  spec.threshold = std::max<std::uint64_t>(params.threshold, 1);
  spec.colors = &colors;

  congest::Config config;
  if (request.threads != 0) config.threads = request.threads;
  config.budget.max_rounds = request.max_rounds;
  config.budget.max_messages = request.max_messages;
  if (request.deadline_ms != 0)
    config.budget.deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(request.deadline_ms);
  congest::Network net(g, config);
  const auto out = core::run_color_bfs_on_engine(net, spec);
  if (net.budget_exhausted()) {
    // Cooperative cancellation tripped: the partial protocol state is not a
    // detection verdict, so the payload is the structured stop alone. The
    // round/message budgets stop at a deterministic round boundary, which
    // keeps this result (counters included) bit-identical at every thread
    // count; a deadline stop carries whatever the wall clock allowed.
    DetectionResult stopped;
    const bool deadline = net.budget_status() == congest::BudgetStatus::kDeadline;
    stopped.code = deadline ? ErrorCode::kDeadlineExceeded : ErrorCode::kBudgetExceeded;
    stopped.rounds_measured = net.metrics().rounds;
    stopped.messages = net.metrics().messages;
    stopped.congestion = net.metrics().busiest_round_messages;
    if (deadline) {
      stopped.error = "deadline of " + std::to_string(request.deadline_ms) +
                      " ms expired mid-simulation";
    } else if (net.budget_status() == congest::BudgetStatus::kRoundBudget) {
      stopped.error = "round budget of " + std::to_string(request.max_rounds) +
                      " exhausted after " + std::to_string(net.metrics().messages) +
                      " messages";
    } else {
      stopped.error = "message budget of " + std::to_string(request.max_messages) +
                      " exhausted after " + std::to_string(net.metrics().rounds) + " rounds";
    }
    return stopped;
  }
  result.detected = out.rejected;
  result.rounds_measured = out.rounds;
  result.messages = out.messages;
  result.congestion = net.metrics().busiest_round_messages;
  result.extra.emplace_back("rejecting_nodes", static_cast<double>(out.rejecting_nodes.size()));
  result.extra.emplace_back("resolved_threads", static_cast<double>(net.thread_count()));
  return result;
}

/// Post-hoc budget charge for the palette (non-engine) detectors: they run
/// to completion — their round/message counts are analytic, not simulated —
/// and a count above the budget converts the result into the same
/// structured kBudgetExceeded an engine stop produces. Deterministic by
/// construction (pure function of the deterministic counters).
DetectionResult charge_budget(DetectionResult result, const DetectionRequest& request) {
  if (!result.ok()) return result;
  const std::uint64_t rounds = std::max(result.rounds_measured, result.rounds_charged);
  std::string error;
  if (request.max_rounds != 0 && rounds > request.max_rounds)
    error = "round budget of " + std::to_string(request.max_rounds) + " exceeded: " +
            std::to_string(rounds) + " rounds";
  else if (request.max_messages != 0 && result.messages > request.max_messages)
    error = "message budget of " + std::to_string(request.max_messages) + " exceeded: " +
            std::to_string(result.messages) + " messages";
  if (error.empty()) return result;
  DetectionResult stopped;
  stopped.code = ErrorCode::kBudgetExceeded;
  stopped.error = std::move(error);
  stopped.rounds_measured = result.rounds_measured;
  stopped.messages = result.messages;
  stopped.congestion = result.congestion;
  return stopped;
}

}  // namespace

DetectionResult detect(const GraphHandle& graph, const DetectionRequest& request) {
  DetectionResult result;
  if (!graph.valid()) {
    result.code = ErrorCode::kBadRequest;
    result.error = "invalid graph handle";
    return result;
  }
  if (request.k == 0 || request.k > 16) {
    result.code = ErrorCode::kBadRequest;
    result.error = "k must be in [1, 16], got " + std::to_string(request.k);
    return result;
  }
  if (request.threads > congest::WorkerPool::kMaxThreads) {
    result.code = ErrorCode::kBadRequest;
    result.error = "thread budget above the engine maximum of " +
                   std::to_string(congest::WorkerPool::kMaxThreads);
    return result;
  }

  const auto start = std::chrono::steady_clock::now();
  try {
    if (request.detector == "engine-color-bfs") {
      result = run_engine_color_bfs(graph.graph(), request);
    } else {
      const auto& palette = harness::algorithm_palette();
      const auto entry = std::find_if(
          palette.begin(), palette.end(),
          [&](const harness::NamedAlgorithm& a) { return a.name == request.detector; });
      if (entry == palette.end()) {
        result.code = ErrorCode::kUnknownDetector;
        result.error = "unknown detector: " + request.detector;
        return result;
      }
      Rng rng(request.seed);
      const harness::CellResult cell = entry->run(graph.graph(), request.k, rng);
      result.detected = cell.detected;
      result.rounds_measured = cell.rounds_measured;
      result.rounds_charged = cell.rounds_charged;
      result.messages = cell.messages;
      result.congestion = cell.congestion;
      result.extra = cell.extra;
      result = charge_budget(std::move(result), request);
    }
  } catch (const std::exception& e) {
    result = DetectionResult{};
    result.code = ErrorCode::kExecutionFailed;
    result.error = e.what();
  }
  const auto stop = std::chrono::steady_clock::now();
  result.seconds = std::chrono::duration<double>(stop - start).count();
  return result;
}

std::vector<std::string> detector_names() {
  std::vector<std::string> names;
  for (const auto& algorithm : harness::algorithm_palette()) names.push_back(algorithm.name);
  names.push_back("engine-color-bfs");
  return names;
}

std::vector<std::string> family_names(std::uint32_t k) {
  std::vector<std::string> names;
  for (const auto& generator : harness::generator_palette(k)) names.push_back(generator.name);
  return names;
}

harness::JsonValue result_to_json(const DetectionResult& result, bool with_timing) {
  using harness::JsonValue;
  std::vector<std::pair<std::string, JsonValue>> members;
  members.emplace_back("code", JsonValue::string(error_code_name(result.code)));
  if (!result.ok()) members.emplace_back("error", JsonValue::string(result.error));
  members.emplace_back("detected", JsonValue::boolean(result.detected));
  members.emplace_back("rounds_measured", JsonValue::uint(result.rounds_measured));
  members.emplace_back("rounds_charged", JsonValue::uint(result.rounds_charged));
  members.emplace_back("messages", JsonValue::uint(result.messages));
  members.emplace_back("congestion", JsonValue::uint(result.congestion));
  std::vector<std::pair<std::string, JsonValue>> extra;
  for (const auto& [key, value] : result.extra)
    extra.emplace_back(key, JsonValue::number(value));
  members.emplace_back("extra", JsonValue::object(std::move(extra)));
  if (with_timing) members.emplace_back("seconds", JsonValue::number(result.seconds));
  return JsonValue::object(std::move(members));
}

int scenario_cli(const std::string& scenario, int argc, char** argv) {
  return harness::run_scenario_cli(scenario, argc, argv);
}

}  // namespace evencycle::api
