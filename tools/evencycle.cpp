// The `evencycle` command-line tool: list scenarios, run one (batched,
// JSON or text output), and compare two perf documents (the CI gate).
// All logic lives in the library (harness/cli.hpp) so the thin bench
// wrappers and tests share it.
#include "harness/cli.hpp"

int main(int argc, char** argv) { return evencycle::harness::cli_main(argc, argv); }
