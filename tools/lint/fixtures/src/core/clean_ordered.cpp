// Fixture: ordered containers in a result path are fine — iteration order
// is specified, so folds over them are deterministic.
// Expected findings: none.
#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace fixture {
std::uint64_t tally(const std::map<std::string, std::uint64_t>& m) {
  std::uint64_t sum = 0;
  for (const auto& [key, value] : m) sum += value ^ key.size();
  return sum;
}

std::size_t count(const std::set<std::uint32_t>& s) { return s.size(); }
}  // namespace fixture
