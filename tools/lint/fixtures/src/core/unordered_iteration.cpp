// Fixture: unordered containers in a result path — iteration order is
// hash-seed dependent, so anything folded from it is nondeterministic.
// Planted: unordered-iteration at lines 11 and 17 (the includes are not
// flagged — only uses are).
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {
std::uint64_t tally(const std::unordered_map<std::string, std::uint64_t>& m) {
  std::uint64_t sum = 0;
  for (const auto& [key, value] : m) sum += value ^ key.size();
  return sum;
}

std::size_t count(const std::unordered_set<std::uint32_t>& s) { return s.size(); }
}  // namespace fixture
