// Fixture: accumulating wall-clock seconds with += double — FP addition is
// non-associative, so the sum depends on batch/thread schedule.
// Planted: float-accumulation at lines 11 and 12. The integer accumulation
// on line 18 must NOT match.
#include <cstdint>

namespace fixture {
double seconds_since(std::uint64_t) { return 0.5; }

void fold_timings(double& compute_seconds, double& total_secs) {
  compute_seconds += seconds_since(0);
  total_secs += 0.25;
}

std::uint64_t fold_rounds(const std::uint64_t* rounds, std::size_t n) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i)
    sum += rounds[i];
  return sum;
}
}  // namespace fixture
