// Fixture: hardware_concurrency outside resolve_thread_count leaks the host
// machine's core count into engine behavior.
// Planted: nondeterminism at line 8.
#include <thread>

namespace fixture {
unsigned pick_shard_count() {
  return std::thread::hardware_concurrency();
}
}  // namespace fixture
