// Fixture: valid suppressions — a known rule plus a justification, on the
// finding's own line or on a pure comment line directly above.
// Expected findings: none.
#include <random>

namespace fixture {
unsigned sampled_seed() {
  // evencycle-lint: allow(nondeterminism) fixture exercising same-file suppression
  std::random_device device;
  return device();
}

void fold(double& wall_seconds, double delta) {
  wall_seconds += delta;  // evencycle-lint: allow(float-accumulation) timing only, not part of the payload
}
}  // namespace fixture
