// Fixture: malformed suppressions are themselves findings, so a typo'd
// allow can never silently disable a rule.
// Planted: bad-suppression at lines 9 and 15, and the nondeterminism
// findings at lines 10 and 16 survive because neither allow is valid.
#include <random>

namespace fixture {
unsigned unknown_rule() {
  // evencycle-lint: allow(no-such-rule) this rule id does not exist
  std::random_device device;
  return device();
}
unsigned missing_reason() {
  // the allow below has no justification text
  // evencycle-lint: allow(nondeterminism)
  std::random_device device;
  return device();
}
}  // namespace fixture
