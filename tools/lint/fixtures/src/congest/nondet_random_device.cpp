// Fixture: std::random_device seeds are machine entropy — never reproducible.
// Planted: nondeterminism at line 7.
#include <random>

namespace fixture {
unsigned entropy_seed() {
  std::random_device device;
  return device();
}
}  // namespace fixture
