// Fixture: an on_round implementation that respects both shard bounds.
// Expected findings: none (the pure declaration has no body to check).
#include <cstdint>

namespace fixture {
struct ShardContext {
  std::uint32_t* state;
};

struct Iface {
  virtual ~Iface() = default;
  virtual void on_round(ShardContext& ctx, std::uint32_t first,
                        std::uint32_t last) = 0;
};

struct GoodProgram : Iface {
  void on_round(ShardContext& ctx, std::uint32_t first,
                std::uint32_t last) override {
    for (std::uint32_t v = first; v < last; ++v) ctx.state[v] += v;
  }
};
}  // namespace fixture
