// Fixture: argless std::mt19937 — the default-constructed stream is
// implementation-defined, so results differ across standard libraries.
// Planted: nondeterminism at lines 8, 9, and 12. The seeded constructions
// on lines 16 and 17 must NOT match.
#include <random>

namespace fixture {
std::mt19937 default_stream;
std::mt19937_64 wide_stream{};

unsigned draw() {
  return std::mt19937()();
}

unsigned draw_seeded(unsigned seed) {
  std::mt19937 engine(seed);
  std::mt19937_64 wide{seed};
  return engine() ^ static_cast<unsigned>(wide());
}
}  // namespace fixture
