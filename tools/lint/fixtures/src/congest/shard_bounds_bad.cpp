// Fixture: an on_round implementation that ignores its shard bounds —
// touching vertices outside [first, last) races with sibling shards.
// Planted: shard-bounds at line 12 (the body never reads 'last').
#include <cstdint>

namespace fixture {
struct ShardContext {
  std::uint32_t* state;
};

struct BadProgram {
  void on_round(ShardContext& ctx, std::uint32_t first, std::uint32_t last) {
    ctx.state[first] = 1;
  }
};
}  // namespace fixture
