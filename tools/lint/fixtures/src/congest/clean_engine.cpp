// Fixture: a clean engine file. hardware_concurrency is allowed inside
// resolve_thread_count, and seeded generators are fine everywhere.
// Expected findings: none.
#include <algorithm>
#include <random>
#include <thread>

namespace fixture {
unsigned resolve_thread_count(unsigned requested) {
  if (requested != 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

unsigned seeded_draw(unsigned seed) {
  std::mt19937 engine(seed);
  return engine();
}
}  // namespace fixture
