// Fixture: wall-clock seeding in an engine path.
// Planted: nondeterminism at line 8. The time_point type name and the
// commented-out call below must NOT match.
#include <chrono>
#include <ctime>

namespace fixture {
long clock_seed() { return static_cast<long>(std::time(nullptr)); }

std::chrono::steady_clock::time_point now_marker() {
  // a real time() call would be flagged here
  return std::chrono::steady_clock::time_point{};
}
}  // namespace fixture
