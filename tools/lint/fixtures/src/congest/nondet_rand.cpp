// Fixture: libc rand()/srand() in an engine path.
// Planted: nondeterminism at lines 7 and 8.
#include <cstdlib>

namespace fixture {
int pick(int n) {
  std::srand(42);
  return std::rand() % n;
}
}  // namespace fixture
