// Fixture: a file outside the engine directories that registers a
// ShardProgram subclass — the base clause pulls it into nondeterminism
// scope regardless of path.
// Planted: nondeterminism at line 18.
#include <cstdint>
#include <cstdlib>

namespace congest {
struct ShardContext {
  std::uint32_t* state;
};
struct ShardProgram {
  virtual ~ShardProgram() = default;
};
}  // namespace congest

struct NoisyProgram : public congest::ShardProgram {
  int jitter() const { return std::rand(); }
};
