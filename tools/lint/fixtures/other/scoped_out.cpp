// Fixture: a file outside the engine scope (not src/congest/, src/core/,
// src/harness/, and no ShardProgram). Nondeterminism and container rules do
// not apply here; only shard-bounds is global.
// Expected findings: none.
#include <cstdlib>
#include <unordered_map>

namespace fixture {
int scratch(int n) {
  std::unordered_map<int, int> cache;
  cache[n] = std::rand();
  return cache[n];
}
}  // namespace fixture
