#include "lint_rules.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace evencycle::lint {

namespace {

constexpr const char* kRuleNondeterminism = "nondeterminism";
constexpr const char* kRuleUnordered = "unordered-iteration";
constexpr const char* kRuleFloatAccumulation = "float-accumulation";
constexpr const char* kRuleShardBounds = "shard-bounds";
constexpr const char* kRuleBadSuppression = "bad-suppression";

bool is_ident_char(char c) {
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
}

bool is_ident_start(char c) {
  return (std::isalpha(static_cast<unsigned char>(c)) != 0) || c == '_';
}

std::size_t skip_ws(std::string_view text, std::size_t i) {
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i])) != 0)
    ++i;
  return i;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

/// Maps a character offset in the (column-preserving) stripped text to a
/// 1-based line number.
class LineIndex {
 public:
  explicit LineIndex(std::string_view text) {
    starts_.push_back(0);
    for (std::size_t i = 0; i < text.size(); ++i)
      if (text[i] == '\n') starts_.push_back(i + 1);
  }

  std::size_t line_of(std::size_t offset) const {
    const auto it = std::upper_bound(starts_.begin(), starts_.end(), offset);
    return static_cast<std::size_t>(it - starts_.begin());
  }

  std::size_t line_count() const { return starts_.size(); }

  std::string_view line_text(std::string_view text, std::size_t line) const {
    const std::size_t begin = starts_[line - 1];
    const std::size_t end =
        line < starts_.size() ? starts_[line] - 1 : text.size();
    return text.substr(begin, end - begin);
  }

 private:
  std::vector<std::size_t> starts_;
};

/// True iff `text[pos, pos+word.size())` is `word` as a whole identifier.
bool ident_token_at(std::string_view text, std::size_t pos, std::string_view word) {
  if (text.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && is_ident_char(text[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  return end >= text.size() || !is_ident_char(text[end]);
}

bool contains_ident_token(std::string_view text, std::string_view word) {
  for (std::size_t pos = text.find(word); pos != std::string_view::npos;
       pos = text.find(word, pos + 1))
    if (ident_token_at(text, pos, word)) return true;
  return false;
}

/// True iff the ShardProgram token starting at `pos` appears in a base-class
/// clause (": public congest::ShardProgram", ", ShardProgram", ...), as
/// opposed to a declaration, template argument, or parameter type.
bool is_base_clause_use(std::string_view text, std::size_t pos) {
  std::size_t p = pos;
  // Walk back over namespace qualifiers: ("evencycle::")? ("congest::")? etc.
  for (;;) {
    while (p > 0 && std::isspace(static_cast<unsigned char>(text[p - 1])) != 0) --p;
    if (p >= 2 && text[p - 2] == ':' && text[p - 1] == ':') {
      p -= 2;
      while (p > 0 && is_ident_char(text[p - 1])) --p;
      continue;
    }
    break;
  }
  while (p > 0 && std::isspace(static_cast<unsigned char>(text[p - 1])) != 0) --p;
  if (p == 0) return false;
  const char before = text[p - 1];
  if (before == ':' || before == ',') return true;
  if (!is_ident_char(before)) return false;
  std::size_t b = p;
  while (b > 0 && is_ident_char(text[b - 1])) --b;
  const std::string_view word = text.substr(b, p - b);
  return word == "public" || word == "protected" || word == "private" ||
         word == "virtual";
}

/// One parsed suppression comment (`evencycle-lint:` + `allow(<rule>)` +
/// the justification text).
struct Allow {
  std::size_t line = 0;
  std::string rule;
  std::string reason;
};

/// A plausible rule id: lowercase words joined by dashes. Anything else
/// after `allow(` — e.g. documentation placeholders — is not treated as a
/// suppression attempt at all.
bool is_rule_shaped(std::string_view rule) {
  if (rule.empty()) return false;
  for (const char c : rule)
    if (!(std::islower(static_cast<unsigned char>(c)) != 0 ||
          std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '-'))
      return false;
  return true;
}

/// Parses suppressions from `comment_text` — the source with string/char
/// literals blanked but comments preserved, so a string literal that happens
/// to mention the suppression syntax can never suppress anything.
std::vector<Allow> parse_allows(std::string_view comment_text) {
  static constexpr std::string_view kMarker = "evencycle-lint:";
  std::vector<Allow> allows;
  std::size_t line = 1;
  std::size_t begin = 0;
  while (begin <= comment_text.size()) {
    std::size_t end = comment_text.find('\n', begin);
    if (end == std::string_view::npos) end = comment_text.size();
    const std::string_view text = comment_text.substr(begin, end - begin);
    std::size_t at = text.find(kMarker);
    if (at != std::string_view::npos) {
      std::size_t i = skip_ws(text, at + kMarker.size());
      static constexpr std::string_view kAllow = "allow(";
      if (text.compare(i, kAllow.size(), kAllow) == 0) {
        const std::size_t open = i + kAllow.size();
        const std::size_t close = text.find(')', open);
        if (close != std::string_view::npos) {
          Allow allow;
          allow.line = line;
          allow.rule = std::string(trim(text.substr(open, close - open)));
          std::string_view reason = text.substr(close + 1);
          // An allow inside a block comment may carry the comment's
          // closing token; it is not part of the justification.
          if (const std::size_t star = reason.rfind("*/");
              star != std::string_view::npos)
            reason = reason.substr(0, star);
          allow.reason = std::string(trim(reason));
          if (is_rule_shaped(allow.rule)) allows.push_back(std::move(allow));
        }
      }
    }
    begin = end + 1;
    ++line;
  }
  return allows;
}

/// Offsets of every '{' that opens the body of a resolve_thread_count
/// definition (where hardware_concurrency is legitimate).
std::vector<std::size_t> resolve_thread_count_bodies(std::string_view text) {
  std::vector<std::size_t> bodies;
  static constexpr std::string_view kName = "resolve_thread_count";
  for (std::size_t pos = text.find(kName); pos != std::string_view::npos;
       pos = text.find(kName, pos + 1)) {
    if (!ident_token_at(text, pos, kName)) continue;
    std::size_t i = skip_ws(text, pos + kName.size());
    if (i >= text.size() || text[i] != '(') continue;
    int depth = 0;
    while (i < text.size()) {
      if (text[i] == '(') ++depth;
      if (text[i] == ')' && --depth == 0) break;
      ++i;
    }
    if (i >= text.size()) continue;
    i = skip_ws(text, i + 1);
    // Skip trailing specifiers (noexcept, const, ...) between ")" and "{".
    while (i < text.size() && is_ident_start(text[i])) {
      while (i < text.size() && is_ident_char(text[i])) ++i;
      i = skip_ws(text, i);
    }
    if (i < text.size() && text[i] == '{') bodies.push_back(i);
  }
  return bodies;
}

void scan_nondeterminism(std::string_view text, const LineIndex& lines,
                         std::vector<Finding>& out) {
  const auto resolve_bodies = resolve_thread_count_bodies(text);
  int depth = 0;
  int resolve_depth = -1;

  const auto emit = [&](std::size_t offset, const std::string& message) {
    out.push_back({"", lines.line_of(offset), kRuleNondeterminism, message});
  };

  for (std::size_t i = 0; i < text.size();) {
    const char c = text[i];
    if (c == '{') {
      ++depth;
      if (std::find(resolve_bodies.begin(), resolve_bodies.end(), i) !=
          resolve_bodies.end())
        resolve_depth = depth;
      ++i;
      continue;
    }
    if (c == '}') {
      if (depth == resolve_depth) resolve_depth = -1;
      --depth;
      ++i;
      continue;
    }
    if (!is_ident_start(c)) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    while (i < text.size() && is_ident_char(text[i])) ++i;
    const std::string_view id = text.substr(start, i - start);
    const std::size_t after = skip_ws(text, i);
    const bool call_like = after < text.size() && text[after] == '(';

    if ((id == "rand" || id == "srand") && call_like) {
      emit(start, "nondeterminism source '" + std::string(id) +
                      "()' in deterministic engine code; derive randomness "
                      "from an evencycle::Rng seeded by the caller");
    } else if (id == "random_device") {
      emit(start,
           "nondeterminism source 'std::random_device' in deterministic "
           "engine code; derive randomness from an evencycle::Rng seeded by "
           "the caller");
    } else if ((id == "time" || id == "clock" || id == "gettimeofday" ||
                id == "localtime" || id == "gmtime") &&
               call_like) {
      emit(start, "nondeterminism source '" + std::string(id) +
                      "()' in deterministic engine code; wall-clock values "
                      "must never reach protocol or result state");
    } else if (id == "hardware_concurrency" && resolve_depth < 0) {
      emit(start,
           "'hardware_concurrency' outside resolve_thread_count; thread "
           "count must flow through Config::threads so results stay "
           "machine-independent");
    } else if (id == "mt19937" || id == "mt19937_64") {
      // Argless construction: `std::mt19937 g;`, `std::mt19937{}`,
      // `std::mt19937()`. A seeded construction is deterministic and allowed.
      std::size_t j = after;
      bool argless = false;
      if (j < text.size() && text[j] == '(') {
        argless = skip_ws(text, j + 1) < text.size() &&
                  text[skip_ws(text, j + 1)] == ')';
      } else if (j < text.size() && text[j] == '{') {
        argless = skip_ws(text, j + 1) < text.size() &&
                  text[skip_ws(text, j + 1)] == '}';
      } else if (j < text.size() && is_ident_start(text[j])) {
        while (j < text.size() && is_ident_char(text[j])) ++j;
        j = skip_ws(text, j);
        if (j < text.size()) {
          if (text[j] == ';' || text[j] == ',' || text[j] == ')') {
            argless = true;
          } else if (text[j] == '{') {
            argless = skip_ws(text, j + 1) < text.size() &&
                      text[skip_ws(text, j + 1)] == '}';
          }
        }
      }
      if (argless)
        emit(start, "argless std::" + std::string(id) +
                        " (implementation-defined default stream); seed "
                        "explicitly or use evencycle::Rng");
    }
  }
}

void scan_unordered(std::string_view text, const LineIndex& lines,
                    std::vector<Finding>& out) {
  static constexpr std::string_view kTypes[] = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  for (const auto type : kTypes) {
    for (std::size_t pos = text.find(type); pos != std::string_view::npos;
         pos = text.find(type, pos + 1)) {
      if (!ident_token_at(text, pos, type)) continue;
      // Skip preprocessor lines: flag the use, not '#include <unordered_map>'.
      const std::size_t line = lines.line_of(pos);
      if (!trim(lines.line_text(text, line)).empty() &&
          trim(lines.line_text(text, line)).front() == '#')
        continue;
      out.push_back({"", line, kRuleUnordered,
                     "'std::" + std::string(type) +
                         "' in a determinism-sensitive path: iteration order "
                         "is unspecified and leaks into results; use "
                         "std::map / std::set / a sorted vector"});
    }
  }
}

bool rhs_looks_floating(std::string_view rhs) {
  for (const std::string_view marker :
       {"seconds_since(", "duration<", "cast<double>", "cast<float>",
        "(double)", "(float)", "uniform01("})
    if (rhs.find(marker) != std::string_view::npos) return true;
  // Floating literal: a digit run followed by '.', not part of an
  // identifier (v1.size()) and not a member access (x.count).
  for (std::size_t i = 0; i + 1 < rhs.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(rhs[i])) == 0) continue;
    if (i > 0 && is_ident_char(rhs[i - 1]) &&
        std::isdigit(static_cast<unsigned char>(rhs[i - 1])) == 0)
      continue;
    std::size_t j = i;
    while (j < rhs.size() && std::isdigit(static_cast<unsigned char>(rhs[j])) != 0)
      ++j;
    if (j < rhs.size() && rhs[j] == '.' &&
        (j + 1 >= rhs.size() || !is_ident_start(rhs[j + 1])))
      return true;
  }
  return false;
}

void scan_float_accumulation(std::string_view text, const LineIndex& lines,
                             std::vector<Finding>& out) {
  for (std::size_t line = 1; line <= lines.line_count(); ++line) {
    const std::string_view row = lines.line_text(text, line);
    for (const std::string_view op : {"+=", "-="}) {
      const std::size_t pos = row.find(op);
      if (pos == std::string_view::npos) continue;
      std::string_view lhs = trim(row.substr(0, pos));
      if (lhs.empty() || lhs.ends_with("operator")) continue;
      const std::string_view rhs = row.substr(pos + op.size());

      bool suffix_match = false;
      if (is_ident_char(lhs.back())) {
        std::size_t b = lhs.size();
        while (b > 0 && is_ident_char(lhs[b - 1])) --b;
        const std::string_view target = lhs.substr(b);
        for (const std::string_view hint : {"seconds", "secs", "elapsed", "wall"})
          if (target.ends_with(hint)) suffix_match = true;
      }
      if (suffix_match || rhs_looks_floating(rhs)) {
        out.push_back(
            {"", line, kRuleFloatAccumulation,
             "floating-point accumulation in a deterministic reduce path: FP "
             "addition is not associative, so accumulation order (thread "
             "count, batch width) leaks into results; accumulate integers, "
             "or suppress timing-only accumulators with a justification"});
        break;  // one finding per line
      }
    }
  }
}

void scan_shard_bounds(std::string_view text, const LineIndex& lines,
                       std::vector<Finding>& out) {
  static constexpr std::string_view kName = "on_round";
  for (std::size_t pos = text.find(kName); pos != std::string_view::npos;
       pos = text.find(kName, pos + 1)) {
    if (!ident_token_at(text, pos, kName)) continue;
    std::size_t i = skip_ws(text, pos + kName.size());
    if (i >= text.size() || text[i] != '(') continue;
    const std::size_t open = i;
    int depth = 0;
    while (i < text.size()) {
      if (text[i] == '(') ++depth;
      if (text[i] == ')' && --depth == 0) break;
      ++i;
    }
    if (i >= text.size()) continue;
    const std::size_t close = i;
    const std::string_view params = text.substr(open + 1, close - open - 1);
    if (params.find("ShardContext") == std::string_view::npos) continue;

    // Split the parameter list at top-level commas; the bound parameters
    // are everything after the context.
    std::vector<std::string_view> parts;
    {
      int pdepth = 0;
      std::size_t part_begin = 0;
      for (std::size_t p = 0; p <= params.size(); ++p) {
        const char pc = p < params.size() ? params[p] : ',';
        if (pc == '(' || pc == '<' || pc == '[') ++pdepth;
        if (pc == ')' || pc == '>' || pc == ']') --pdepth;
        if (pc == ',' && pdepth <= 0) {
          parts.push_back(trim(params.substr(part_begin, p - part_begin)));
          part_begin = p + 1;
        }
      }
    }

    // Skip declaration-only matches: specifiers, then `{` means a body.
    std::size_t k = skip_ws(text, close + 1);
    while (k < text.size() && is_ident_start(text[k])) {
      while (k < text.size() && is_ident_char(text[k])) ++k;
      k = skip_ws(text, k);
    }
    if (k >= text.size() || text[k] != '{') continue;
    const std::size_t body_open = k;
    int bdepth = 0;
    while (k < text.size()) {
      if (text[k] == '{') ++bdepth;
      if (text[k] == '}' && --bdepth == 0) break;
      ++k;
    }
    const std::string_view body = text.substr(body_open, k - body_open);

    for (std::size_t part = 1; part < parts.size(); ++part) {
      std::string_view decl = parts[part];
      std::string name;
      if (!decl.empty() && is_ident_char(decl.back())) {
        std::size_t b = decl.size();
        while (b > 0 && is_ident_char(decl[b - 1])) --b;
        // A nameless parameter ("VertexId") leaves the type as the trailing
        // identifier; treat a known type name as "no name".
        const std::string_view tail = decl.substr(b);
        if (b != 0 && tail != "VertexId" && tail != "uint32_t")
          name = std::string(tail);
      }
      if (name.empty() || !contains_ident_token(body, name)) {
        const std::string label =
            name.empty() ? ("parameter " + std::to_string(part + 1))
                         : ("'" + name + "'");
        out.push_back({"", lines.line_of(pos), kRuleShardBounds,
                       "on_round implementation does not reference its " +
                           label +
                           " shard bound; a ShardProgram must confine "
                           "mutation to its own [first, last) range"});
      }
    }
  }
}

std::string read_file(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ok = false;
    return {};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  ok = in.good() || in.eof();
  return buffer.str();
}

bool path_contains(std::string_view path, std::string_view needle) {
  return path.find(needle) != std::string_view::npos;
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = {
      kRuleNondeterminism, kRuleUnordered, kRuleFloatAccumulation,
      kRuleShardBounds, kRuleBadSuppression};
  return kNames;
}

bool is_known_rule(std::string_view rule) {
  const auto& names = rule_names();
  return std::find(names.begin(), names.end(), rule) != names.end();
}

namespace {

/// The shared lexer behind strip_comments_and_strings: blanks string and
/// char literals always, and comments unless `keep_comments` (the
/// suppression parser reads comments but must never read literals).
std::string blank_literals(std::string_view source, bool keep_comments) {
  std::string out(source);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // the )delim" terminator of a raw string
  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          if (!keep_comments) out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          if (!keep_comments) out[i] = ' ';
        } else if (c == '"' && i > 0 && source[i - 1] == 'R') {
          // R"delim( ... )delim"
          std::size_t paren = source.find('(', i + 1);
          if (paren == std::string_view::npos) break;
          raw_delim = ")" + std::string(source.substr(i + 1, paren - i - 1)) + "\"";
          state = State::kRawString;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'' && !(i > 0 && is_ident_char(source[i - 1]))) {
          // Exclude digit separators (1'000'000).
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n')
          state = State::kCode;
        else if (!keep_comments)
          out[i] = ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          if (!keep_comments) {
            out[i] = ' ';
            out[i + 1] = ' ';
          }
          ++i;
          state = State::kCode;
        } else if (c != '\n' && !keep_comments) {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (source.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t d = 0; d < raw_delim.size(); ++d) out[i + d] = ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

}  // namespace

std::string strip_comments_and_strings(std::string_view source) {
  return blank_literals(source, /*keep_comments=*/false);
}

std::vector<Finding> lint_source(std::string_view path, std::string_view content) {
  const std::string stripped = strip_comments_and_strings(content);
  const LineIndex lines(stripped);

  const bool engine_path =
      path_contains(path, "src/congest/") || path_contains(path, "src/core/");
  const bool harness_path = path_contains(path, "src/harness/");
  bool shard_program_file = false;
  {
    static constexpr std::string_view kBase = "ShardProgram";
    for (std::size_t pos = stripped.find(kBase); pos != std::string_view::npos;
         pos = stripped.find(kBase, pos + 1)) {
      if (ident_token_at(stripped, pos, kBase) &&
          is_base_clause_use(stripped, pos)) {
        shard_program_file = true;
        break;
      }
    }
  }

  std::vector<Finding> raw;
  if (engine_path || shard_program_file)
    scan_nondeterminism(stripped, lines, raw);
  if (engine_path || harness_path) scan_unordered(stripped, lines, raw);
  if (path_contains(path, "src/congest/") || harness_path)
    scan_float_accumulation(stripped, lines, raw);
  scan_shard_bounds(stripped, lines, raw);

  // Suppressions: a valid allow on the finding's line, or on the line just
  // above when that line is purely a comment. Parsed with literals blanked,
  // so a string mentioning the syntax can never suppress anything.
  const std::vector<Allow> allows =
      parse_allows(blank_literals(content, /*keep_comments=*/true));
  const auto is_comment_line = [&](std::size_t line) {
    return line >= 1 && line <= lines.line_count() &&
           trim(lines.line_text(stripped, line)).empty();
  };
  const auto suppressed = [&](const Finding& f) {
    for (const Allow& a : allows) {
      if (a.rule != f.rule || a.reason.empty() || !is_known_rule(a.rule))
        continue;
      if (a.line == f.line) return true;
      if (a.line + 1 == f.line && is_comment_line(a.line)) return true;
    }
    return false;
  };

  std::vector<Finding> findings;
  for (Finding& f : raw) {
    if (suppressed(f)) continue;
    f.file = std::string(path);
    findings.push_back(std::move(f));
  }
  for (const Allow& a : allows) {
    if (!is_known_rule(a.rule)) {
      findings.push_back({std::string(path), a.line, kRuleBadSuppression,
                          "allow(" + a.rule + ") names an unknown rule"});
    } else if (a.reason.empty()) {
      findings.push_back({std::string(path), a.line, kRuleBadSuppression,
                          "allow(" + a.rule +
                              ") lacks a justification; write: // "
                              "evencycle-lint: allow(" +
                              a.rule + ") <reason>"});
    }
  }

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) { return a.line < b.line; });
  return findings;
}

std::vector<Finding> lint_file(const std::string& path) {
  bool ok = true;
  const std::string content = read_file(path, ok);
  if (!ok) return {{path, 0, "io-error", "cannot read file"}};
  std::string normalized = path;
  std::replace(normalized.begin(), normalized.end(), '\\', '/');
  return lint_source(normalized, content);
}

namespace {

void collect_from(const std::filesystem::path& dir, bool exclude_fixtures,
                  std::vector<std::string>& out) {
  namespace fs = std::filesystem;
  if (!fs::exists(dir)) return;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    const std::string ext = p.extension().string();
    if (ext != ".hpp" && ext != ".cpp" && ext != ".h" && ext != ".cc") continue;
    std::string s = p.generic_string();
    if (exclude_fixtures && s.find("tools/lint/fixtures") != std::string::npos)
      continue;
    out.push_back(std::move(s));
  }
}

}  // namespace

std::vector<std::string> collect_tree_files(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const char* sub : {"src", "tools", "bench", "tests", "examples"})
    collect_from(fs::path(root) / sub, /*exclude_fixtures=*/true, files);
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<std::string> collect_dir_files(const std::string& dir) {
  std::vector<std::string> files;
  collect_from(std::filesystem::path(dir), /*exclude_fixtures=*/false, files);
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace evencycle::lint
