#!/usr/bin/env bash
# Run clang-tidy over the whole tree using the compile database exported by
# CMake. Designed for two callers:
#
#   ctest -L lint     registers this script with SKIP_RETURN_CODE 77: it
#                     skips (exit 77) unless clang-tidy is installed AND the
#                     run is opted into with EVENCYCLE_CLANG_TIDY=1 — local
#                     containers often carry only the gcc toolchain.
#   CI lint job       passes --force, so a missing clang-tidy there is a
#                     hard failure, never a silent skip.
#
# Usage: run_clang_tidy.sh <build-dir> [--force] [--config-file <file>]
set -u

SKIP=77
build_dir=""
force=0
config_file=""

while [ $# -gt 0 ]; do
  case "$1" in
    --force) force=1 ;;
    --config-file)
      shift
      config_file="${1:?--config-file needs an argument}"
      ;;
    -h|--help)
      sed -n '2,12p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *)
      if [ -z "$build_dir" ]; then build_dir="$1"; else
        echo "run_clang_tidy.sh: unexpected argument: $1" >&2
        exit 2
      fi
      ;;
  esac
  shift
done

if [ -z "$build_dir" ]; then
  echo "usage: run_clang_tidy.sh <build-dir> [--force] [--config-file <file>]" >&2
  exit 2
fi

root="$(cd "$(dirname "$0")/../.." && pwd)"

if [ "$force" -ne 1 ] && [ "${EVENCYCLE_CLANG_TIDY:-0}" != "1" ]; then
  echo "run_clang_tidy.sh: skipped (set EVENCYCLE_CLANG_TIDY=1 or pass --force)" >&2
  exit "$SKIP"
fi

tidy=""
for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "$candidate" > /dev/null 2>&1; then
    tidy="$candidate"
    break
  fi
done
if [ -z "$tidy" ]; then
  if [ "$force" -eq 1 ]; then
    echo "run_clang_tidy.sh: clang-tidy not found but --force was given" >&2
    exit 1
  fi
  echo "run_clang_tidy.sh: clang-tidy not found; skipping" >&2
  exit "$SKIP"
fi

db="$build_dir/compile_commands.json"
if [ ! -f "$db" ]; then
  if [ "$force" -eq 1 ]; then
    echo "run_clang_tidy.sh: $db not found; configure with CMake first" >&2
    exit 1
  fi
  echo "run_clang_tidy.sh: $db not found; skipping" >&2
  exit "$SKIP"
fi

config_args=()
if [ -n "$config_file" ]; then
  config_args=(--config-file="$config_file")
fi

# Lint every .cpp that is in the compile database (fixtures never are: they
# are planted-violation data for evencycle_lint, not build targets).
mapfile -t files < <(cd "$root" && find src tools bench tests examples \
  -name '*.cpp' -not -path 'tools/lint/fixtures/*' | sort)

echo "run_clang_tidy.sh: $tidy over ${#files[@]} files (db: $db)"
status=0
printf '%s\n' "${files[@]}" |
  (cd "$root" && xargs -P "$(nproc)" -n 8 \
    "$tidy" -p "$build_dir" --quiet "${config_args[@]}") || status=$?

if [ "$status" -ne 0 ]; then
  echo "run_clang_tidy.sh: findings reported (exit $status)" >&2
  exit 1
fi
echo "run_clang_tidy.sh: clean"
exit 0
