// evencycle-lint: the domain-invariant checker behind `ctest -L lint`.
//
// clang-tidy knows C++; it does not know that this engine promises
// bit-identical results at every thread count, that CONGEST messages are
// 12-byte packed words, or that a ShardProgram may only mutate its own
// [first, last) vertex range. This linter enforces exactly those
// repo-specific invariants with a token-level scan (comments and string
// literals stripped, no libclang dependency), so a violation fails `ctest -L
// lint` in seconds instead of surfacing as a nightly determinism mismatch.
//
// Rules (ids are stable; tests and suppressions reference them):
//
//   nondeterminism      In deterministic engine code (src/congest/,
//                       src/core/, or any file deriving from ShardProgram):
//                       no rand()/srand(), std::random_device, time()-family
//                       calls, argless std::mt19937, or
//                       hardware_concurrency outside resolve_thread_count.
//                       All randomness must flow from evencycle::Rng seeded
//                       by the caller.
//
//   unordered-iteration In engine or harness result paths: no
//                       std::unordered_map / std::unordered_set — their
//                       iteration order is unspecified and leaks into
//                       batch results.
//
//   float-accumulation  In Metrics reduce paths (src/congest/) and harness
//                       result paths: no float/double compound
//                       accumulation — FP addition is not associative, so
//                       accumulation order (thread count, batch width)
//                       leaks into the deterministic payload.
//
//   shard-bounds        Every on_round(ShardContext&, first, last)
//                       implementation must reference BOTH of its shard
//                       bound parameters — a body that ignores them is the
//                       signature of a whole-array write from one shard.
//
//   bad-suppression     An `allow` comment with an unknown rule id or no
//                       justification text. Suppressions are
//                       `// evencycle-lint: allow(<rule>) <reason>` on the
//                       violating line or the pure-comment line above it;
//                       the reason is mandatory and cannot itself be
//                       suppressed.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace evencycle::lint {

/// One rule violation. `line` is 1-based, matching compiler diagnostics.
struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Stable ids of every rule the linter can report (bad-suppression last).
const std::vector<std::string>& rule_names();

/// True iff `rule` is a known rule id (valid inside allow(...)).
bool is_known_rule(std::string_view rule);

/// Replaces comments, string literals, and char literals with spaces,
/// preserving newlines and column positions. Exposed for tests; every rule
/// scans this form, so tokens inside comments or strings never match.
std::string strip_comments_and_strings(std::string_view source);

/// Lints one translation unit. `path` determines which rules apply (see the
/// file header); `content` is the raw source text. Findings are ordered by
/// line. Paths are matched with '/' separators.
std::vector<Finding> lint_source(std::string_view path, std::string_view content);

/// Reads and lints `path`. On read failure returns a single io-error
/// pseudo-finding (rule "io-error") so a vanished file fails loudly.
std::vector<Finding> lint_file(const std::string& path);

/// The default tree manifest: every *.hpp / *.cpp under root/{src, tools,
/// bench, tests, examples}, excluding tools/lint/fixtures (the planted
/// violations). Sorted, so output and exit codes are deterministic.
std::vector<std::string> collect_tree_files(const std::string& root);

/// Every *.hpp / *.cpp under `dir`, recursively, sorted. No exclusions —
/// this is how the fixture corpus itself is linted.
std::vector<std::string> collect_dir_files(const std::string& dir);

}  // namespace evencycle::lint
