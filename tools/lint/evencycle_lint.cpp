// evencycle_lint — the repo's domain-invariant checker (see lint_rules.hpp
// for the rule set). Wired into `ctest -L lint` and the CI lint job.
//
// Usage:
//   evencycle_lint --root <repo>       lint the default tree manifest
//                                      (src, tools, bench, tests, examples;
//                                      fixtures excluded)
//   evencycle_lint <file|dir>...       lint explicit files or directories
//                                      (directories walked recursively, no
//                                      exclusions — how the fixture corpus
//                                      checks itself)
//   evencycle_lint --list-rules        print the rule ids and exit
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lint_rules.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: evencycle_lint --root <dir> | <file|dir>... | "
               "--list-rules\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using evencycle::lint::Finding;

  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& rule : evencycle::lint::rule_names())
        std::printf("%s\n", rule.c_str());
      return 0;
    }
    if (arg == "--root") {
      if (i + 1 >= argc) return usage();
      const std::string root = argv[++i];
      if (!std::filesystem::is_directory(root)) {
        std::fprintf(stderr, "evencycle_lint: not a directory: %s\n", root.c_str());
        return 2;
      }
      const auto tree = evencycle::lint::collect_tree_files(root);
      files.insert(files.end(), tree.begin(), tree.end());
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else if (std::filesystem::is_directory(arg)) {
      const auto dir = evencycle::lint::collect_dir_files(arg);
      files.insert(files.end(), dir.begin(), dir.end());
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage();

  std::size_t finding_count = 0;
  std::size_t files_with_findings = 0;
  bool io_error = false;
  for (const auto& file : files) {
    const std::vector<Finding> findings = evencycle::lint::lint_file(file);
    if (!findings.empty()) ++files_with_findings;
    for (const Finding& f : findings) {
      if (f.rule == "io-error") io_error = true;
      std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
      ++finding_count;
    }
  }

  if (io_error) return 2;
  if (finding_count > 0) {
    std::printf("evencycle-lint: %zu finding(s) in %zu of %zu file(s)\n",
                finding_count, files_with_findings, files.size());
    return 1;
  }
  std::printf("evencycle-lint: clean (%zu files)\n", files.size());
  return 0;
}
