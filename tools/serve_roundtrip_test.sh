#!/usr/bin/env bash
# Round-trip smoke for `evencycle serve` + `evencycle query`: start a
# 1-connection server on a temp unix socket, run one query against it,
# and require both sides to exit cleanly with an ok response.
set -u

CLI="${1:?usage: serve_roundtrip_test.sh /path/to/evencycle}"

DIR="$(mktemp -d /tmp/evencycle-serve-XXXXXX)" || exit 1
SOCKET="$DIR/svc.sock"
trap 'rm -rf "$DIR"' EXIT

"$CLI" serve --socket "$SOCKET" --lanes 2 --max-connections 1 &
SERVER=$!

# Wait for the socket to appear (the server unlinks stale paths first,
# so existence means the listener is bound).
for _ in $(seq 1 100); do
  [ -S "$SOCKET" ] && break
  sleep 0.1
done
if [ ! -S "$SOCKET" ]; then
  echo "FAIL: server socket never appeared" >&2
  kill "$SERVER" 2>/dev/null
  exit 1
fi

RESPONSE="$("$CLI" query --socket "$SOCKET" --family torus --nodes 49 \
  --detector baseline-flooding --seed 7 --k 2)"
QUERY_STATUS=$?

wait "$SERVER"
SERVER_STATUS=$?

echo "response: $RESPONSE"
if [ "$QUERY_STATUS" -ne 0 ]; then
  echo "FAIL: query exited $QUERY_STATUS" >&2
  exit 1
fi
if [ "$SERVER_STATUS" -ne 0 ]; then
  echo "FAIL: serve exited $SERVER_STATUS after its connection budget" >&2
  exit 1
fi
case "$RESPONSE" in
  *'"ok":true'*) ;;
  *) echo "FAIL: response is not ok" >&2; exit 1 ;;
esac
echo "PASS: serve/query round trip"
