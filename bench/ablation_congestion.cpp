// A2: the congestion / success-probability trade-off behind the quantum
// speedup (paper Section 3.2.1).
//
// Algorithm 2 activates each color-0 source with probability 1/tau and
// clips the threshold to 4: congestion drops to O(1) and the success
// probability drops to Theta(1/tau) — which Theorem 3 then boosts with a
// quadratic discount. This bench sweeps the activation probability between
// the two endpoints and measures both sides of the trade.
#include <cmath>
#include <iostream>

#include "evencycle.hpp"

namespace {

using namespace evencycle;
using graph::VertexId;

}  // namespace

int main() {
  std::cout << "Ablation A2: activation probability vs congestion vs success\n"
               "(Algorithm 1 <-> Algorithm 2 interpolation, Section 3.2.1).\n";
  Rng rng(0xEC2024);
  const std::uint32_t k = 2;
  const VertexId n = 600;

  // Instance with a well-colored planted cycle; the coloring is fixed to a
  // good one so success measures the *activation* machinery only.
  const auto planted = graph::planted_heavy_cycle(n, 2 * k, 4 * core::ceil_root(n, k), rng);
  std::vector<std::uint8_t> colors(n, static_cast<std::uint8_t>(2 * k - 1));
  for (std::size_t i = 0; i < planted.cycle.size(); ++i)
    colors[planted.cycle[i]] = static_cast<std::uint8_t>(i);

  const auto params = core::Params::practical(k, n);
  const double tau = static_cast<double>(params.threshold);

  print_banner(std::cout, "activation sweep on a fixed well-colored instance");
  TextTable table({"activation prob", "threshold", "success rate", "avg max |I_v|",
                   "avg rounds (meas)", "expected success ~ a"});
  for (double activation : {1.0, 0.25, 1.0 / 16, 1.0 / 64, 1.0 / tau}) {
    const std::uint64_t threshold = activation >= 1.0 ? params.threshold : 4;
    int successes = 0;
    double congestion = 0, rounds = 0;
    const int runs = 300;
    for (int run = 0; run < runs; ++run) {
      core::ColorBfsSpec spec;
      spec.cycle_length = 2 * k;
      spec.threshold = threshold;
      spec.activation_prob = activation;
      spec.colors = &colors;
      const auto out = core::run_color_bfs(planted.graph, spec, rng);
      successes += out.rejected ? 1 : 0;
      congestion += static_cast<double>(out.max_set_size);
      rounds += static_cast<double>(out.rounds_measured);
    }
    table.add_row({TextTable::num(activation, 6), TextTable::integer(threshold),
                   TextTable::num(static_cast<double>(successes) / runs, 3),
                   TextTable::num(congestion / runs, 2), TextTable::num(rounds / runs, 2),
                   TextTable::num(std::min(1.0, activation), 6)});
  }
  table.print(std::cout);

  print_banner(std::cout, "the quadratic discount (Theorem 3)");
  TextTable boost({"eps = success floor", "classical boost reps ~ 1/eps",
                   "quantum boost ~ sqrt(1/eps)", "ratio"});
  for (double eps : {1e-1, 1e-2, 1e-3, 1e-4}) {
    const double classical = std::ceil(1.0 / eps);
    const double quantum = std::ceil(std::sqrt(1.0 / eps));
    boost.add_row({TextTable::num(eps, 5), TextTable::integer(classical),
                   TextTable::integer(quantum), TextTable::num(classical / quantum, 1)});
  }
  boost.print(std::cout);

  std::cout << "\nTake-away: congestion scales ~ activation * tau while success scales\n"
               "~ activation; the quantum amplification pays sqrt(1/success), which is\n"
               "what buys the n^{1-1/k} -> n^{1/2-1/2k} improvement.\n\nDone.\n";
  return 0;
}
