// A2: the congestion / success-probability trade-off behind the quantum
// speedup (paper Section 3.2.1). The experiment is the harness scenario
// "ablation-congestion" (src/harness/scenarios_builtin.cpp); this wrapper
// is equivalent to `evencycle run ablation-congestion ...`.
#include "evencycle/api.hpp"

int main(int argc, char** argv) {
  return evencycle::api::scenario_cli("ablation-congestion", argc, argv);
}
