// PERF: google-benchmark microbenchmarks of the substrates (simulator
// round throughput, primitives, generators, color-BFS, density machinery).
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>

#include "evencycle.hpp"

namespace {

using namespace evencycle;
using graph::Graph;
using graph::VertexId;

using congest::FloodShardProgram;  // congest/workloads.hpp — the exact
                                   // perf-scenario workload

/// The same flood through the per-vertex NodeProgram adapter — kept as a
/// benchmark so the batched model's dispatch savings stay measurable.
class FloodNodeProgram : public congest::NodeProgram {
 public:
  void on_round(congest::Context& ctx) override { ctx.broadcast({0, ctx.id()}); }
};

void BM_NetworkRoundThroughput(benchmark::State& state) {
  const auto side = static_cast<VertexId>(state.range(0));
  const Graph g = graph::grid(side, side);
  congest::Network net(g);
  net.install(std::make_shared<FloodShardProgram>());
  for (auto _ : state) net.run_round();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 * g.edge_count());
  state.counters["nodes"] = static_cast<double>(g.vertex_count());
}
BENCHMARK(BM_NetworkRoundThroughput)->Arg(16)->Arg(64)->Arg(128);

void BM_NetworkRoundThroughputAdapter(benchmark::State& state) {
  const auto side = static_cast<VertexId>(state.range(0));
  const Graph g = graph::grid(side, side);
  congest::Network net(g);
  net.install([](VertexId) { return std::make_unique<FloodNodeProgram>(); });
  for (auto _ : state) net.run_round();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 * g.edge_count());
  state.counters["nodes"] = static_cast<double>(g.vertex_count());
}
BENCHMARK(BM_NetworkRoundThroughputAdapter)->Arg(64)->Arg(128);

// Same flooding round, multi-threaded engine: Arg is the thread count.
void BM_NetworkRoundThroughputMT(benchmark::State& state) {
  const Graph g = graph::grid(256, 256);
  congest::Config config;
  config.threads = static_cast<std::uint32_t>(state.range(0));
  congest::Network net(g, config);
  net.install(std::make_shared<FloodShardProgram>());
  for (auto _ : state) net.run_round();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 * g.edge_count());
  state.counters["threads"] = static_cast<double>(net.thread_count());
}
BENCHMARK(BM_NetworkRoundThroughputMT)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// The send hot path in isolation: a cache-resident ring floods at full
// bandwidth, so nearly all cycles sit in send_from's staging store. Items
// are staged sends.
void BM_SendPath(benchmark::State& state) {
  const Graph g = graph::cycle(static_cast<VertexId>(state.range(0)));
  congest::Network net(g);
  net.install(std::make_shared<FloodShardProgram>());
  net.run_round();  // warm-up: buffer capacities
  for (auto _ : state) net.run_round();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 * g.edge_count());
}
BENCHMARK(BM_SendPath)->Arg(1024)->Arg(16384);

// The scatter (deliver) path in isolation: radix-place one prebuilt staged
// run into the mailbox arena, feeding it the compute-time histogram exactly
// the way the engine does. Items are delivered messages. Arg(1) selects
// the receiver distribution: 0 = uniform (4 per node), 1 = power-law
// (Zipf-like head: a few receivers soak up most of the traffic — the skew
// the work-stealing scheduler exists for), 2 = single receiver (worst-case
// cursor contention on one inbox).
void BM_MailboxScatter(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const std::uint32_t per_node = 4;
  const auto shape = static_cast<int>(state.range(1));
  std::vector<congest::StagedMessage> staged;
  staged.reserve(static_cast<std::size_t>(n) * per_node);
  Rng rng(42);
  for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(n) * per_node; ++i) {
    VertexId to = 0;
    switch (shape) {
      case 0:
        to = static_cast<VertexId>(i / per_node);
        break;
      case 1: {
        // Inverse-transform power law: u^3 concentrates receivers near 0.
        const double u = rng.uniform01();
        to = static_cast<VertexId>(static_cast<double>(n - 1) * u * u * u);
        break;
      }
      default:
        to = n / 2;
        break;
    }
    staged.push_back({to, congest::pack_port_tag(static_cast<std::uint32_t>(i % per_node), 1),
                      i});
  }
  const std::vector<std::span<const congest::StagedMessage>> runs = {
      {staged.data(), staged.size()}};

  congest::Mailbox mailbox;
  mailbox.reset(n);
  std::vector<std::uint32_t> counts(n, 0);
  const std::vector<std::uint32_t*> lane_counts = {counts.data()};
  for (auto _ : state) {
    // Rebuild the histogram each iteration — in the engine this increment
    // happens inside send_from; scatter_block read-and-zeroes it.
    for (const auto& msg : staged) ++counts[msg.to];
    mailbox.begin_rebuild(staged.size());
    mailbox.scatter_block(0, n, 0, runs, lane_counts);
    benchmark::DoNotOptimize(mailbox.inbox(n / 2).data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(staged.size()));
}
BENCHMARK(BM_MailboxScatter)
    ->Args({4096, 0})
    ->Args({262144, 0})
    ->Args({262144, 1})
    ->Args({262144, 2});

// The work-stealing scheduler in isolation: a deliberately skewed task set
// (task i spins proportionally to its index) seeded into one deque, so the
// run completes fast only if idle workers steal the backlog. Items are
// tasks; the steals counter is the interesting part.
void BM_StealScheduler(benchmark::State& state) {
  congest::WorkerPool pool(static_cast<std::uint32_t>(state.range(0)));
  constexpr std::uint64_t kTasks = 256;
  std::vector<std::uint64_t> initial(kTasks);
  for (std::uint64_t i = 0; i < kTasks; ++i) initial[i] = i;
  std::atomic<std::uint64_t> sink{0};
  const congest::WorkerPool::TaskExecutor executor = [&](std::uint64_t task, std::uint32_t) {
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < 50 * (task + 1); ++i) acc += i * i;
    sink.fetch_add(acc, std::memory_order_relaxed);
  };
  std::uint64_t steals = 0;
  for (auto _ : state) {
    pool.run_tasks(initial, executor);
    steals += pool.last_task_stats().steals;
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kTasks);
  state.counters["steals_per_run"] =
      static_cast<double>(steals) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_StealScheduler)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_BfsTreeBuild(benchmark::State& state) {
  Rng rng(1);
  const Graph g = graph::random_near_regular(static_cast<VertexId>(state.range(0)), 4, rng);
  congest::Network net(g);
  for (auto _ : state) {
    const auto tree = congest::build_bfs_tree(net, 0);
    benchmark::DoNotOptimize(tree.rounds);
  }
}
BENCHMARK(BM_BfsTreeBuild)->Arg(1000)->Arg(10000);

void BM_ErdosRenyiGenerator(benchmark::State& state) {
  Rng rng(2);
  const auto n = static_cast<VertexId>(state.range(0));
  for (auto _ : state) {
    const Graph g = graph::erdos_renyi(n, 8.0 / n, rng);
    benchmark::DoNotOptimize(g.edge_count());
  }
}
BENCHMARK(BM_ErdosRenyiGenerator)->Arg(10000)->Arg(100000);

void BM_ColorBfsFast(benchmark::State& state) {
  Rng rng(3);
  const auto n = static_cast<VertexId>(state.range(0));
  const auto planted = graph::planted_heavy_cycle(n, 4, 4 * core::ceil_root(n, 2), rng);
  const auto params = core::Params::practical(2, n);
  const auto colors = core::random_coloring(n, 4, rng);
  core::ColorBfsSpec spec;
  spec.cycle_length = 4;
  spec.threshold = params.threshold;
  spec.colors = &colors;
  for (auto _ : state) {
    const auto out = core::run_color_bfs(planted.graph, spec, rng);
    benchmark::DoNotOptimize(out.rejected);
  }
}
BENCHMARK(BM_ColorBfsFast)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ColorBfsEngine(benchmark::State& state) {
  Rng rng(4);
  const auto n = static_cast<VertexId>(state.range(0));
  const auto planted = graph::planted_light_cycle(n, 4, rng);
  const auto colors = core::random_coloring(n, 4, rng);
  core::ColorBfsSpec spec;
  spec.cycle_length = 4;
  spec.threshold = 4;
  spec.colors = &colors;
  congest::Network net(planted.graph);
  for (auto _ : state) {
    const auto out = core::run_color_bfs_on_engine(net, spec);
    benchmark::DoNotOptimize(out.rejected);
  }
}
BENCHMARK(BM_ColorBfsEngine)->Arg(1000)->Arg(10000);

void BM_Algorithm1Iteration(benchmark::State& state) {
  Rng rng(5);
  const auto n = static_cast<VertexId>(state.range(0));
  const auto planted = graph::planted_heavy_cycle(n, 4, 4 * core::ceil_root(n, 2), rng);
  core::PracticalTuning tuning;
  tuning.repetitions = 1;
  const auto params = core::Params::practical(2, n, tuning);
  core::DetectOptions options;
  options.stop_on_reject = false;
  for (auto _ : state) {
    const auto report = core::detect_even_cycle(planted.graph, params, rng, options);
    benchmark::DoNotOptimize(report.rounds_measured);
  }
}
BENCHMARK(BM_Algorithm1Iteration)->Arg(1000)->Arg(10000);

void BM_GirthExact(benchmark::State& state) {
  Rng rng(6);
  const Graph g = graph::random_near_regular(static_cast<VertexId>(state.range(0)), 3, rng);
  for (auto _ : state) {
    const auto result = graph::girth(g);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_GirthExact)->Arg(500)->Arg(2000);

void BM_Decomposition(benchmark::State& state) {
  Rng rng(7);
  const Graph g = graph::random_near_regular(static_cast<VertexId>(state.range(0)), 4, rng);
  quantum::DecompositionOptions options;
  options.separation = 9;
  for (auto _ : state) {
    const auto d = quantum::decompose(g, options, rng);
    benchmark::DoNotOptimize(d.cluster_count);
  }
}
BENCHMARK(BM_Decomposition)->Arg(1000)->Arg(5000);

void BM_ColorCodingGroundTruth(benchmark::State& state) {
  Rng rng(8);
  const auto planted =
      graph::plant_cycle(graph::random_near_regular(static_cast<VertexId>(state.range(0)), 3, rng),
                         6, rng);
  for (auto _ : state) {
    const bool found = graph::contains_cycle_color_coding(planted.graph, 6, rng, 10);
    benchmark::DoNotOptimize(found);
  }
}
BENCHMARK(BM_ColorCodingGroundTruth)->Arg(1000)->Arg(4000);

}  // namespace

BENCHMARK_MAIN();
