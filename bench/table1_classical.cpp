// T1-C: regenerates the classical rows of the paper's Table 1.
//
// For each k and a grid of n, runs Algorithm 1 on planted-C_{2k} workloads
// (a light instance and a heavy-hub instance), reporting measured rounds
// per iteration, the paper's worst-case charge, and measured congestion;
// then fits log-log exponents and compares them against the paper's
// O(n^{1-1/k}) claim, the [10] local-threshold baseline (same exponent,
// only valid k <= 5), and the analytic [16] curves this paper improves on.
#include <cmath>
#include <iostream>
#include <vector>

#include "evencycle.hpp"

namespace {

using namespace evencycle;
using graph::Graph;
using graph::VertexId;

struct Sample {
  double n = 0;
  double rounds_measured = 0;
  double rounds_charged = 0;
  double congestion = 0;
  double tau = 0;
};

/// Selection constant keeping p = c k^2 / n^{1/k} below the 1/2 clamp over
/// the whole sweep, so tau retains its n^{1-1/k} dependence. The paper's
/// constant is asymptotic (p -> 0); at simulation sizes and k >= 3 it would
/// saturate p and flatten the exponent to 1 (see EXPERIMENTS.md).
double sweep_selection_constant(std::uint32_t k, VertexId n_min) {
  return 0.4 * std::pow(static_cast<double>(n_min), 1.0 / k) / (k * k);
}

Sample measure_ours(std::uint32_t k, VertexId n, VertexId n_min, Rng& rng) {
  // Workload: tree host with a planted 2k-cycle through a hub of degree
  // ~4 n^{1/k} (exercises the heavy path), plus background edges.
  const auto hub_degree =
      static_cast<std::uint32_t>(4 * core::ceil_root(n, k) + 2 * k + 2);
  const auto planted = graph::planted_heavy_cycle(n, 2 * k, hub_degree, rng);

  core::PracticalTuning tuning;
  tuning.repetitions = 6;  // rounds scale linearly in K; report per iteration
  tuning.selection_constant = sweep_selection_constant(k, n_min);
  const auto params = core::Params::practical(k, n, tuning);
  core::DetectOptions options;
  options.stop_on_reject = false;
  const auto report = core::detect_even_cycle(planted.graph, params, rng, options);

  Sample sample;
  sample.n = n;
  const auto iters = static_cast<double>(report.iterations_run);
  sample.rounds_measured = static_cast<double>(report.rounds_measured) / iters;
  sample.rounds_charged = static_cast<double>(report.rounds_charged) / iters;
  sample.congestion = static_cast<double>(report.max_congestion);
  sample.tau = static_cast<double>(params.threshold);
  return sample;
}

Sample measure_local_threshold(std::uint32_t k, VertexId n, Rng& rng) {
  const auto hub_degree =
      static_cast<std::uint32_t>(4 * core::ceil_root(n, k) + 2 * k + 2);
  const auto planted = graph::planted_heavy_cycle(n, 2 * k, hub_degree, rng);
  baseline::LocalThresholdOptions options;
  options.local_threshold = 3;
  options.stop_on_reject = false;
  options.attempts = 0;  // auto: ~4 n^{1-1/k} attempts
  const auto report =
      baseline::detect_even_cycle_local_threshold(planted.graph, k, options, rng);
  Sample sample;
  sample.n = n;
  sample.rounds_measured = static_cast<double>(report.rounds_measured);
  sample.rounds_charged = static_cast<double>(report.rounds_charged);
  return sample;
}

void run_for_k(std::uint32_t k, const std::vector<VertexId>& sizes, Rng& rng) {
  print_banner(std::cout, "Table 1 (classical), k = " + std::to_string(k) +
                              "  —  C_" + std::to_string(2 * k) + "-freeness");

  TextTable table({"n", "tau", "ours rounds/iter (meas)", "ours rounds/iter (charged)",
                   "ours max |I_v|", "[10] rounds total (charged)"});
  std::vector<double> ns, ours_charged, ours_measured, baseline_charged;
  for (const auto n : sizes) {
    const Sample ours = measure_ours(k, n, sizes.front(), rng);
    const Sample local = measure_local_threshold(k, n, rng);
    ns.push_back(ours.n);
    ours_charged.push_back(ours.rounds_charged);
    ours_measured.push_back(ours.rounds_measured);
    baseline_charged.push_back(local.rounds_charged);
    table.add_row({TextTable::integer(ours.n), TextTable::integer(ours.tau),
                   TextTable::num(ours.rounds_measured, 1),
                   TextTable::num(ours.rounds_charged, 1), TextTable::integer(ours.congestion),
                   TextTable::num(local.rounds_charged, 1)});
  }
  table.print(std::cout);

  const auto fit_ours = fit_power_law(ns, ours_charged);
  const auto fit_meas = fit_power_law(ns, ours_measured);
  const auto fit_base = fit_power_law(ns, baseline_charged);
  const double paper = core::exponent_ours_classical(k);

  TextTable fits({"series", "fitted exponent", "paper exponent", "R^2"});
  fits.add_row({"this paper (charged)", TextTable::num(fit_ours.exponent),
                TextTable::num(paper), TextTable::num(fit_ours.r_squared)});
  fits.add_row({"this paper (measured)", TextTable::num(fit_meas.exponent), "<= " + TextTable::num(paper),
                TextTable::num(fit_meas.r_squared)});
  if (k <= 5) {
    fits.add_row({"[10] local threshold (charged)", TextTable::num(fit_base.exponent),
                  TextTable::num(core::exponent_censor_hillel(k)),
                  TextTable::num(fit_base.r_squared)});
  }
  if (k >= 3) {
    fits.add_row({"[16] Eden et al. (analytic)", TextTable::num(core::exponent_eden(k)),
                  "worse than ours for all k", "-"});
  }
  fits.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "Reproduction of Table 1, classical rows: C_{2k}-freeness in\n"
               "O(n^{1-1/k}) CONGEST rounds (this paper) vs the [10] baseline\n"
               "and the analytic [16] exponents. Constants are simulator-scale;\n"
               "the claim under test is the exponent and the ordering.\n";
  Rng rng(0xEC2024);

  run_for_k(2, {1024, 2048, 4096, 8192, 16384, 32768}, rng);
  run_for_k(3, {1024, 2048, 4096, 8192, 16384}, rng);
  run_for_k(4, {1024, 2048, 4096, 8192}, rng);
  run_for_k(6, {1024, 2048, 4096}, rng);

  print_banner(std::cout, "Bounded-length row: {C_l | 3<=l<=2k} in ~O(n^{1-1/k}) (Sec. 3.5)");
  {
    TextTable bounded({"n", "k", "rounds/iter (charged)", "rounds/iter (meas)", "girth found"});
    std::vector<double> ns, charged;
    for (const VertexId n : {1024u, 4096u, 16384u}) {
      Rng local(n * 7);
      const Graph g = graph::torus(static_cast<VertexId>(std::sqrt(n)),
                                   static_cast<VertexId>(std::sqrt(n)));  // girth 4
      core::BoundedCycleOptions options;
      options.repetitions = 4;
      options.stop_on_reject = false;
      const auto report = core::detect_bounded_cycle(g, 2, options, local);
      const auto iters = static_cast<double>(report.iterations_run);
      ns.push_back(g.vertex_count());
      charged.push_back(static_cast<double>(report.rounds_charged) / iters);
      bounded.add_row({TextTable::integer(g.vertex_count()), "2",
                       TextTable::num(static_cast<double>(report.rounds_charged) / iters, 1),
                       TextTable::num(static_cast<double>(report.rounds_measured) / iters, 1),
                       report.cycle_detected ? "<= 4" : "-"});
    }
    bounded.print(std::cout);
    const auto fit = fit_power_law(ns, charged);
    std::cout << "fitted exponent (charged): " << TextTable::num(fit.exponent)
              << "  —  paper: " << TextTable::num(core::exponent_ours_classical(2)) << "\n";
  }

  print_banner(std::cout, "Odd rows: deterministic/randomized Theta~(n)");
  TextTable odd({"n", "C5 full-detector rounds/iter (charged)", "expected Theta(n)"});
  for (const VertexId n : {512u, 1024u, 2048u, 4096u}) {
    Rng local(n);
    const auto planted = graph::plant_cycle(graph::random_tree(n, local), 5, local);
    core::OddCycleOptions options;
    options.repetitions = 2;
    options.stop_on_reject = false;
    const auto report = core::detect_odd_cycle(planted.graph, 2, options, local);
    odd.add_row({TextTable::integer(n),
                 TextTable::num(static_cast<double>(report.rounds_charged) /
                                    static_cast<double>(report.iterations_run),
                                1),
                 TextTable::integer(n)});
  }
  odd.print(std::cout);
  std::cout << "\nDone.\n";
  return 0;
}
