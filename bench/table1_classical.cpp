// T1-C: the classical rows of the paper's Table 1 (Algorithm 1 vs the [10]
// baseline, with exponent fits in the summary). The experiment is the
// harness scenario "table1-classical" (src/harness/scenarios_builtin.cpp);
// this wrapper is equivalent to `evencycle run table1-classical ...`.
#include "evencycle/api.hpp"

int main(int argc, char** argv) {
  return evencycle::api::scenario_cli("table1-classical", argc, argv);
}
