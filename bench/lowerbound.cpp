// T1-LB: regenerates the lower-bound rows of Table 1 (Section 3.3).
//
// Builds the Set-Disjointness gadgets, verifies the reduction on live
// instances, measures the words an actual detection protocol pushes across
// the Alice/Bob cut, and evaluates the Braverman-et-al. bounded-round bound
// to produce the implied ~Omega(n^{1/4}) (even) and ~Omega(sqrt n) (odd)
// curves.
#include <cmath>
#include <iostream>

#include "evencycle.hpp"

namespace {

using namespace evencycle;
using namespace evencycle::lowerbound;

void c4_rows(Rng& rng) {
  print_banner(std::cout, "C4 gadget [15]: N = Theta(n^{3/2}), cut = Theta(n)");
  TextTable table({"q", "n", "N (universe)", "cut edges", "measured cut words", "rounds",
                   "implied LB rounds", "n^{1/4} reference"});
  std::vector<double> ns, bounds;
  for (std::uint32_t q : {3u, 5u, 7u, 11u, 13u}) {
    const auto universe = c4_gadget_universe(q);
    const auto instance = DisjointnessInstance::random(universe, 0.4, true, rng);
    const auto gadget = c4_gadget(q, instance);
    CutMeterOptions options;
    options.repetitions = 6;
    options.threshold = 8;
    const auto meter = measure_cut_traffic(gadget, options, rng);
    const double n = gadget.graph.vertex_count();
    const double bits = std::log2(n);
    const double lb = implied_round_lower_bound(universe, meter.cut_edges, bits);
    // The exponent fit uses the log-free bound (the paper's claim is "up
    // to polylog"); the table shows the log-adjusted value.
    ns.push_back(n);
    bounds.push_back(implied_round_lower_bound(universe, meter.cut_edges, 1.0));
    table.add_row({TextTable::integer(q), TextTable::integer(n), TextTable::integer(universe),
                   TextTable::integer(meter.cut_edges), TextTable::integer(meter.cut_words),
                   TextTable::integer(meter.rounds), TextTable::num(lb, 2),
                   TextTable::num(std::pow(n, 0.25), 2)});
  }
  table.print(std::cout);
  const auto fit = fit_power_law(ns, bounds);
  std::cout << "fitted lower-bound exponent: " << TextTable::num(fit.exponent)
            << "  —  paper: 1/4 (up to log factors)\n";
}

void even_rows(Rng& rng) {
  print_banner(std::cout, "C_{2k} gadget (k >= 3): N = Theta(n), cut = Theta(sqrt N)");
  TextTable table({"k", "m", "n", "N", "cut", "reduction ok", "implied LB rounds"});
  for (std::uint32_t k : {3u, 4u}) {
    for (std::uint32_t m : {6u, 10u, 14u}) {
      const auto instance =
          DisjointnessInstance::random(static_cast<std::uint64_t>(m) * m, 0.15, true, rng);
      const auto gadget = even_cycle_gadget(k, m, instance);
      const bool has = graph::contains_cycle_exact(gadget.graph, 2 * k, 500'000'000);
      const double n = gadget.graph.vertex_count();
      const double lb =
          implied_round_lower_bound(gadget.universe, gadget.cut_edges.size(), std::log2(n));
      table.add_row({TextTable::integer(k), TextTable::integer(m), TextTable::integer(n),
                     TextTable::integer(gadget.universe),
                     TextTable::integer(gadget.cut_edges.size()),
                     has == instance.intersecting ? "yes" : "NO", TextTable::num(lb, 2)});
    }
  }
  table.print(std::cout);
}

void odd_rows(Rng& rng) {
  print_banner(std::cout, "C_{2k+1} gadget [15]: N = Theta(n^2), cut = Theta(n)");
  TextTable table({"k", "m", "n", "N", "cut", "reduction ok", "implied LB", "sqrt(n) ref"});
  std::vector<double> ns, bounds;
  for (std::uint32_t m : {6u, 10u, 14u, 18u}) {
    const std::uint32_t k = 2;
    const auto instance =
        DisjointnessInstance::random(static_cast<std::uint64_t>(m) * m, 0.15, true, rng);
    const auto gadget = odd_cycle_gadget(k, m, instance);
    const bool has = graph::contains_cycle_exact(gadget.graph, 2 * k + 1, 500'000'000);
    const double n = gadget.graph.vertex_count();
    const double lb =
        implied_round_lower_bound(gadget.universe, gadget.cut_edges.size(), std::log2(n));
    ns.push_back(n);
    bounds.push_back(implied_round_lower_bound(gadget.universe, gadget.cut_edges.size(), 1.0));
    table.add_row({TextTable::integer(k), TextTable::integer(m), TextTable::integer(n),
                   TextTable::integer(gadget.universe),
                   TextTable::integer(gadget.cut_edges.size()),
                   has == instance.intersecting ? "yes" : "NO", TextTable::num(lb, 2),
                   TextTable::num(std::sqrt(n), 2)});
  }
  table.print(std::cout);
  const auto fit = fit_power_law(ns, bounds);
  std::cout << "fitted odd lower-bound exponent: " << TextTable::num(fit.exponent)
            << "  —  paper: 1/2 (up to log factors)\n";
}

void qubit_requirement() {
  print_banner(std::cout, "Braverman et al.: r-round Disjointness needs Omega(r + N/r) qubits");
  TextTable table({"N", "r = N^{1/4}", "qubits @r", "r = sqrt(N)", "qubits @sqrt",
                   "r = N^{3/4}", "qubits @r"});
  for (double n : {1e4, 1e6, 1e8}) {
    const auto N = static_cast<std::uint64_t>(n);
    auto q = [&](double r) {
      return bounded_round_disjointness_qubits(N, static_cast<std::uint64_t>(r));
    };
    table.add_row({TextTable::integer(n), TextTable::integer(std::pow(n, 0.25)),
                   TextTable::integer(q(std::pow(n, 0.25))),
                   TextTable::integer(std::sqrt(n)), TextTable::integer(q(std::sqrt(n))),
                   TextTable::integer(std::pow(n, 0.75)),
                   TextTable::integer(q(std::pow(n, 0.75)))});
  }
  table.print(std::cout);
  std::cout << "(minimized at r = sqrt(N): the T^2 * cut * log n >= N trade-off)\n";
}

}  // namespace

int main() {
  std::cout << "Reproduction of Table 1, lower-bound rows (Section 3.3): gadget\n"
               "constructions, live reduction checks, cut-traffic measurement, and\n"
               "the implied quantum round lower bounds.\n";
  Rng rng(0xEC2024);
  c4_rows(rng);
  even_rows(rng);
  odd_rows(rng);
  qubit_requirement();
  std::cout << "\nDone.\n";
  return 0;
}
