// F1: regenerates Figure 1 — the Density Lemma machinery.
//
// The paper's figure shows the IN(v, gamma) sparsification for k = 5,
// i = 2 and the explicit 10-cycle P ∪ P' ∪ P''. This bench:
//   1. builds instances in that exact regime (and a sweep over k, i),
//   2. runs the sparsification, reports |IN(v)|, |IN(v,0)|, |OUT(v)|,
//   3. constructs the Lemma 6 cycle and verifies it vertex by vertex,
//   4. checks the Lemma 7 bound on witness-free random instances.
#include <chrono>
#include <iostream>

#include "evencycle.hpp"

namespace {

using namespace evencycle;
using core::DensityAnalysis;
using core::DensityInput;
using core::kNoLayer;
using graph::Graph;
using graph::GraphBuilder;
using graph::VertexId;

struct Instance {
  Graph graph;
  DensityInput input;
  VertexId apex = 0;
};

/// S x W0 complete bipartite plus a funnel of layers up to one apex in
/// layer `depth`.
Instance make_instance(std::uint32_t k, VertexId s_count, VertexId w_count, std::uint32_t depth,
                       VertexId layer_width) {
  Instance inst;
  GraphBuilder b(0);
  std::vector<VertexId> s_ids, prev;
  for (VertexId i = 0; i < s_count; ++i) s_ids.push_back(b.add_vertex());
  std::vector<std::vector<VertexId>> layers(depth + 1);
  for (VertexId i = 0; i < w_count; ++i) {
    const auto w = b.add_vertex();
    layers[0].push_back(w);
    for (auto s : s_ids) b.add_edge(w, s);
  }
  for (std::uint32_t j = 1; j <= depth; ++j) {
    const VertexId width = j == depth ? 1 : layer_width;
    for (VertexId i = 0; i < width; ++i) {
      const auto v = b.add_vertex();
      layers[j].push_back(v);
      for (auto below : layers[j - 1]) b.add_edge(v, below);
    }
  }
  inst.apex = layers[depth].front();
  inst.graph = std::move(b).build();
  inst.input.k = k;
  inst.input.in_s.assign(inst.graph.vertex_count(), false);
  for (auto s : s_ids) inst.input.in_s[s] = true;
  inst.input.layer_of.assign(inst.graph.vertex_count(), kNoLayer);
  for (std::uint32_t j = 0; j <= depth; ++j)
    for (auto v : layers[j]) inst.input.layer_of[v] = static_cast<std::uint8_t>(j);
  return inst;
}

/// "Pipes" instance: every W0 vertex w_j has a private chain
/// w_j -> v_{1,j} -> ... -> v_{i-1,j} -> apex, and all W0 vertices share
/// the same S-neighborhood. Each chain vertex sees only w_j's edges, whose
/// S-degrees (=1) fall below every filter bound, so the whole edge set
/// migrates into OUT at every level and the *apex* (layer i) is the first
/// vertex whose IN is dense enough to survive sparsification — a witness in
/// layer i exactly as Figure 1 depicts (k = 5, i = 2 there).
Instance make_pipes(std::uint32_t k, VertexId s_count, VertexId w_count, std::uint32_t depth) {
  Instance inst;
  GraphBuilder b(0);
  std::vector<VertexId> s_ids;
  for (VertexId i = 0; i < s_count; ++i) s_ids.push_back(b.add_vertex());
  std::vector<std::vector<VertexId>> layers(depth + 1);
  for (VertexId j = 0; j < w_count; ++j) {
    const auto w = b.add_vertex();
    layers[0].push_back(w);
    for (auto s : s_ids) b.add_edge(w, s);
  }
  const auto apex = b.add_vertex();
  layers[depth].push_back(apex);
  for (VertexId j = 0; j < w_count; ++j) {
    VertexId prev = layers[0][j];
    for (std::uint32_t l = 1; l < depth; ++l) {
      const auto v = b.add_vertex();
      layers[l].push_back(v);
      b.add_edge(prev, v);
      prev = v;
    }
    b.add_edge(prev, apex);
  }
  inst.apex = apex;
  inst.graph = std::move(b).build();
  inst.input.k = k;
  inst.input.in_s.assign(inst.graph.vertex_count(), false);
  for (auto s : s_ids) inst.input.in_s[s] = true;
  inst.input.layer_of.assign(inst.graph.vertex_count(), kNoLayer);
  for (std::uint32_t j = 0; j <= depth; ++j)
    for (auto v : layers[j]) inst.input.layer_of[v] = static_cast<std::uint8_t>(j);
  return inst;
}

void sweep() {
  print_banner(std::cout, "Density Lemma sweep: witness + Lemma 6 cycle construction");
  TextTable table({"k", "witness layer i", "|S|", "|W0|", "|E(S,W0)|", "|IN(v)|", "|IN(v,0)|",
                   "|OUT(v)|", "cycle len", "simple", "hits S", "micros"});
  struct Case {
    std::uint32_t k, depth;
    VertexId s, w;
    bool pipes;  // pipes: witness forced into layer `depth`
  };
  const Case cases[] = {
      {2, 1, 8, 40, false},   {3, 1, 12, 80, false},  {3, 2, 12, 80, true},
      {4, 1, 20, 160, false}, {4, 2, 20, 160, true},  {4, 3, 20, 160, true},
      {5, 1, 30, 300, false}, {5, 2, 30, 300, true},  {5, 4, 30, 300, true},
      {6, 2, 40, 500, true},  {7, 3, 60, 900, true},
  };
  for (const auto& c : cases) {
    const auto inst = c.pipes ? make_pipes(c.k, c.s, c.w, c.depth)
                              : make_instance(c.k, c.s, c.w, c.depth, 1);
    const auto start = std::chrono::steady_clock::now();
    DensityAnalysis analysis(inst.graph, inst.input);
    if (!analysis.witness().has_value()) {
      table.add_row({TextTable::integer(c.k), "none"});
      continue;
    }
    const auto v = *analysis.witness();
    const auto cycle = analysis.construct_cycle(v);
    const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    const bool simple = graph::is_simple_cycle(inst.graph, cycle);
    bool hits_s = false;
    for (auto u : cycle) hits_s = hits_s || inst.input.in_s[u];
    table.add_row({TextTable::integer(c.k), TextTable::integer(inst.input.layer_of[v]),
                   TextTable::integer(c.s), TextTable::integer(c.w),
                   TextTable::integer(analysis.bipartite_edges().size()),
                   TextTable::integer(analysis.in_edges(v).size()),
                   TextTable::integer(analysis.in_zero_edges(v).size()),
                   TextTable::integer(analysis.out_edges(v).size()),
                   TextTable::integer(cycle.size()), simple ? "yes" : "NO",
                   hits_s ? "yes" : "NO", TextTable::integer(micros)});
  }
  table.print(std::cout);
}

void figure1_exact_regime() {
  print_banner(std::cout, "Figure 1 regime: k = 5, witness in V_2 (10-cycle)");
  const auto inst = make_pipes(5, 30, 300, 2);
  DensityAnalysis analysis(inst.graph, inst.input);
  if (!analysis.witness().has_value()) {
    std::cout << "no witness (unexpected)\n";
    return;
  }
  // The by-layer sweep may find a layer-1 witness first; report the apex
  // (layer 2) explicitly like the figure does.
  const VertexId v = inst.apex;
  if (analysis.in_zero_edges(v).empty()) {
    std::cout << "apex has empty IN(v,0); witness elsewhere\n";
    return;
  }
  const auto cycle = analysis.construct_cycle(v);
  std::cout << "constructed 2k-cycle (k=5) through v in layer "
            << static_cast<int>(inst.input.layer_of[v]) << ":\n  ";
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const auto u = cycle[i];
    const char* role = inst.input.in_s[u]                ? "S"
                       : inst.input.layer_of[u] == 0     ? "W0"
                       : inst.input.layer_of[u] == kNoLayer ? "?"
                                                         : "V";
    std::cout << u << "(" << role;
    if (role[0] == 'V') std::cout << static_cast<int>(inst.input.layer_of[u]);
    std::cout << ")" << (i + 1 < cycle.size() ? " - " : "\n");
  }
  std::cout << "simple: " << (graph::is_simple_cycle(inst.graph, cycle) ? "yes" : "NO")
            << ", length: " << cycle.size() << " (paper: 10)\n";
}

void lemma7_bound_check(Rng& rng) {
  print_banner(std::cout, "Lemma 7 bound on witness-free random instances");
  TextTable table({"trial", "k", "|S|", "max |W0(v)|", "bound 2^{i-1}(k-1)|S|", "holds"});
  int shown = 0;
  for (int trial = 0; trial < 40 && shown < 8; ++trial) {
    const std::uint32_t k = 3;
    const VertexId s_count = 48;  // wide S: private-ish k^2 blocks stay sparse
    const VertexId w_count = 8 + static_cast<VertexId>(rng.next_below(12));
    GraphBuilder b(0);
    std::vector<VertexId> s_ids, w_ids, v_ids;
    for (VertexId i = 0; i < s_count; ++i) s_ids.push_back(b.add_vertex());
    for (VertexId i = 0; i < w_count; ++i) w_ids.push_back(b.add_vertex());
    for (VertexId i = 0; i < 2; ++i) v_ids.push_back(b.add_vertex());
    for (auto w : w_ids) {
      // k^2 selected neighbors, chosen from a random window to keep the
      // bipartite graph from being too dense (dense => witness).
      const auto offset = rng.next_below(s_count - k * k + 1);
      for (std::uint32_t j = 0; j < k * k; ++j)
        b.add_edge(w, s_ids[offset + j]);
      for (auto v : v_ids)
        if (rng.bernoulli(0.2)) b.add_edge(w, v);
    }
    const Graph g = std::move(b).build();
    DensityInput input;
    input.k = k;
    input.in_s.assign(g.vertex_count(), false);
    for (auto s : s_ids) input.in_s[s] = true;
    input.layer_of.assign(g.vertex_count(), kNoLayer);
    for (auto w : w_ids) input.layer_of[w] = 0;
    for (auto v : v_ids) input.layer_of[v] = 1;
    DensityAnalysis analysis(g, input);
    if (analysis.witness().has_value()) continue;  // bound only promised witness-free
    std::uint64_t max_reach = 0, bound = 0;
    for (auto v : v_ids) {
      max_reach = std::max(max_reach, analysis.w0_reachable(v));
      bound = analysis.lemma7_bound(v);
    }
    table.add_row({TextTable::integer(trial), TextTable::integer(k),
                   TextTable::integer(s_count), TextTable::integer(max_reach),
                   TextTable::integer(bound), max_reach <= bound ? "yes" : "NO"});
    ++shown;
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "Reproduction of Figure 1: the IN/OUT sparsification (Eqs. 3-8), the\n"
               "Lemma 6 cycle P u P' u P'', and the Lemma 7 density bound.\n";
  Rng rng(0xEC2024);
  sweep();
  figure1_exact_regime();
  lemma7_bound_check(rng);
  std::cout << "\nDone.\n";
  return 0;
}
