// PERF: thread-scaling of the CONGEST round engine on a maximal flooding
// workload. The experiment is the harness scenario "engine-scaling"
// (src/harness/scenarios_builtin.cpp); this wrapper is equivalent to
// `evencycle run engine-scaling --json ...` and exists so the historical
// bench binary keeps working.
#include "evencycle/api.hpp"

int main(int argc, char** argv) {
  return evencycle::api::scenario_cli("engine-scaling", argc, argv);
}
