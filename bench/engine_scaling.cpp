// PERF: thread-scaling of the CONGEST round engine on a large flooding
// workload. Every node broadcasts on every port every round — the maximal
// message load the model admits at words_per_round = 1 — and the same
// simulation runs at several thread counts. Emits one JSON record on stdout
// with per-thread-count timings, speedups over threads=1, and a determinism
// check (all metrics must be bit-identical).
//
// Usage: engine_scaling [nodes] [avg_degree] [rounds]
//   defaults: 1,000,000 nodes, average degree 4, 8 timed rounds.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "congest/network.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace {

using namespace evencycle;
using graph::Graph;
using graph::VertexId;

class FloodProgram : public congest::NodeProgram {
 public:
  void on_round(congest::Context& ctx) override { ctx.broadcast({0, ctx.id()}); }
};

struct RunRecord {
  std::uint32_t threads = 1;
  std::uint32_t resolved_threads = 1;
  double seconds = 0.0;
  congest::Metrics metrics;
};

RunRecord run_flood(const Graph& g, std::uint32_t threads, std::uint64_t rounds) {
  congest::Config config;
  config.threads = threads;
  congest::Network net(g, config);
  net.install([](VertexId) { return std::make_unique<FloodProgram>(); });
  net.run_round();  // warm-up: populates arena/lane capacities
  const auto start = std::chrono::steady_clock::now();
  net.run_rounds(rounds);
  const auto stop = std::chrono::steady_clock::now();

  RunRecord record;
  record.threads = threads;
  record.resolved_threads = net.thread_count();
  record.seconds = std::chrono::duration<double>(stop - start).count();
  record.metrics = net.metrics();
  return record;
}

bool metrics_equal(const congest::Metrics& a, const congest::Metrics& b) {
  return a.rounds == b.rounds && a.messages == b.messages &&
         a.busiest_round_messages == b.busiest_round_messages &&
         a.watched_messages == b.watched_messages;
}

}  // namespace

int main(int argc, char** argv) {
  const auto n = static_cast<VertexId>(argc > 1 ? std::atoll(argv[1]) : 1000000);
  const auto avg_degree = static_cast<std::uint32_t>(argc > 2 ? std::atoi(argv[2]) : 4);
  const auto rounds = static_cast<std::uint64_t>(argc > 3 ? std::atoll(argv[3]) : 8);

  Rng rng(2024);
  const Graph g = graph::random_near_regular(n, avg_degree, rng);

  const auto hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::uint32_t> thread_counts{1, 2, 4};
  if (hw > 4) thread_counts.push_back(hw);

  std::vector<RunRecord> records;
  records.reserve(thread_counts.size());
  for (const auto threads : thread_counts) records.push_back(run_flood(g, threads, rounds));

  const auto& baseline = records.front();
  bool deterministic = true;
  for (const auto& record : records)
    deterministic = deterministic && metrics_equal(record.metrics, baseline.metrics);

  const double words = static_cast<double>(baseline.metrics.messages - 2ULL * g.edge_count());

  std::cout << "{\"bench\":\"engine_scaling\""
            << ",\"nodes\":" << g.vertex_count() << ",\"edges\":" << g.edge_count()
            << ",\"rounds\":" << rounds << ",\"hardware_concurrency\":" << hw
            << ",\"deterministic\":" << (deterministic ? "true" : "false")
            << ",\"results\":[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& record = records[i];
    std::cout << (i == 0 ? "" : ",") << "{\"threads\":" << record.threads
              << ",\"resolved_threads\":" << record.resolved_threads
              << ",\"seconds\":" << record.seconds
              << ",\"rounds_per_sec\":" << static_cast<double>(rounds) / record.seconds
              << ",\"words_per_sec\":" << words / record.seconds
              << ",\"speedup\":" << baseline.seconds / record.seconds << "}";
  }
  std::cout << "]}\n";
  return deterministic ? 0 : 1;
}
