// A1: global vs constant local threshold (paper Section 1.1.1; the [23]
// impossibility for k >= 6). The experiment is the harness scenario
// "ablation-threshold" (src/harness/scenarios_builtin.cpp); this wrapper
// is equivalent to `evencycle run ablation-threshold ...`.
#include "evencycle/api.hpp"

int main(int argc, char** argv) {
  return evencycle::api::scenario_cli("ablation-threshold", argc, argv);
}
