// A1: global vs local threshold (the paper's core claim, Section 1.1.1).
//
// The [10] local-threshold technique caps every node at a constant tau_k;
// [23] proved this cannot work for k >= 6. The failure is congestion: a
// relay on the cycle that also hears many other sources discards its whole
// set. The paper's *global* threshold tau = Theta(n^{1-1/k}) forwards
// through the same congestion.
//
// Protocol of the experiment: plant a C_{2k} whose color-1 relay is also
// adjacent to `noise` color-0 source vertices; hand both strategies the
// *correct* coloring (isolating the threshold machinery from color-coding
// luck) and sweep the noise level.
#include <iostream>

#include "evencycle.hpp"

namespace {

using namespace evencycle;
using graph::Graph;
using graph::GraphBuilder;
using graph::VertexId;

struct NoisyInstance {
  Graph graph;
  std::vector<std::uint8_t> colors;
  std::vector<bool> sources;  // color-0 vertices launching the search
};

NoisyInstance make_noisy(std::uint32_t k, std::uint32_t noise) {
  NoisyInstance inst;
  GraphBuilder b(2 * k);
  // The cycle 0..2k-1, colored consecutively.
  for (VertexId i = 0; i < 2 * k; ++i) b.add_edge(i, (i + 1) % (2 * k));
  // Noise sources attached to the color-1 relay (vertex 1).
  std::vector<VertexId> noise_ids;
  for (std::uint32_t i = 0; i < noise; ++i) {
    const auto v = b.add_vertex();
    noise_ids.push_back(v);
    b.add_edge(v, 1);
  }
  inst.graph = std::move(b).build();
  inst.colors.assign(inst.graph.vertex_count(), static_cast<std::uint8_t>(2 * k - 1));
  for (VertexId i = 0; i < 2 * k; ++i) inst.colors[i] = static_cast<std::uint8_t>(i);
  for (auto v : noise_ids) inst.colors[v] = 0;
  inst.sources.assign(inst.graph.vertex_count(), false);
  inst.sources[0] = true;  // the cycle's color-0 vertex
  for (auto v : noise_ids) inst.sources[v] = true;
  return inst;
}

}  // namespace

int main() {
  std::cout << "Ablation A1: global threshold (this paper) vs constant local\n"
               "threshold ([10], impossible for k >= 6 by [23]). Both run on the\n"
               "same correctly-colored noisy instance; only the threshold differs.\n";
  Rng rng(0xEC2024);

  for (std::uint32_t k : {2u, 4u, 6u, 8u}) {
    print_banner(std::cout, "k = " + std::to_string(k) + " (C_" + std::to_string(2 * k) + ")");
    TextTable table({"noise sources at relay", "local tau_k=3 detects", "local discards",
                     "global tau detects", "global tau", "global rounds (meas)"});
    for (std::uint32_t noise : {0u, 2u, 8u, 32u, 128u}) {
      const auto inst = make_noisy(k, noise);
      const auto n = inst.graph.vertex_count();
      core::ColorBfsSpec local;
      local.cycle_length = 2 * k;
      local.threshold = 3;
      local.colors = &inst.colors;
      local.sources = &inst.sources;
      const auto local_out = core::run_color_bfs(inst.graph, local, rng);

      const auto params = core::Params::practical(k, std::max<VertexId>(n, 4));
      core::ColorBfsSpec global = local;
      global.threshold = std::max<std::uint64_t>(params.threshold, 1);
      const auto global_out = core::run_color_bfs(inst.graph, global, rng);

      table.add_row({TextTable::integer(noise), local_out.rejected ? "yes" : "NO",
                     TextTable::integer(local_out.discarded_nodes),
                     global_out.rejected ? "yes" : "NO",
                     TextTable::integer(global.threshold),
                     TextTable::integer(global_out.rounds_measured)});
    }
    table.print(std::cout);
  }

  print_banner(std::cout, "End-to-end detection on heavy instances (k = 2, random colorings)");
  TextTable table({"n", "ours detect rate", "[10] tau=3 detect rate"});
  for (const VertexId n : {300u, 600u, 1200u}) {
    int ours = 0, local = 0;
    const int runs = 6;
    for (int run = 0; run < runs; ++run) {
      Rng seed(n * 131 + run);
      const auto planted = graph::planted_heavy_cycle(n, 4, 4 * core::ceil_root(n, 2), seed);
      core::PracticalTuning tuning;
      tuning.repetitions = 200;
      const auto params = core::Params::practical(2, n, tuning);
      if (core::detect_even_cycle(planted.graph, params, seed).cycle_detected) ++ours;
      baseline::LocalThresholdOptions options;
      options.local_threshold = 3;
      if (baseline::detect_even_cycle_local_threshold(planted.graph, 2, options, seed)
              .cycle_detected)
        ++local;
    }
    table.add_row({TextTable::integer(n),
                   TextTable::num(static_cast<double>(ours) / runs, 2),
                   TextTable::num(static_cast<double>(local) / runs, 2)});
  }
  table.print(std::cout);
  std::cout << "\nDone.\n";
  return 0;
}
