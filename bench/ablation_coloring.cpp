// A3: random color-coding vs the derandomized affine family (paper
// Conclusion). The experiment is the harness scenario "ablation-coloring"
// (src/harness/scenarios_builtin.cpp); this wrapper is equivalent to
// `evencycle run ablation-coloring ...`.
#include "evencycle/api.hpp"

int main(int argc, char** argv) {
  return evencycle::api::scenario_cli("ablation-coloring", argc, argv);
}
