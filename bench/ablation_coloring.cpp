// A3: random color-coding vs the derandomized affine family (paper
// Conclusion: "the randomized color-coding phases can often be replaced by
// deterministic protocols").
//
// Compares, per coloring budget K, (a) the probability that a fixed
// planted 2k-cycle is hit by at least one coloring and (b) the end-to-end
// Algorithm 1 detection rate — for uniform random colorings and for the
// deterministic affine family (zero shared randomness).
#include <cmath>
#include <iostream>

#include "evencycle.hpp"

namespace {

using namespace evencycle;
using graph::VertexId;

}  // namespace

int main() {
  std::cout << "Ablation A3: random vs derandomized colorings (Conclusion).\n";
  Rng rng(0xEC2024);
  const std::uint32_t k = 2;
  const VertexId n = 220;

  print_banner(std::cout, "cycle-hitting probability of a fixed planted C4");
  TextTable hits({"family size K", "random hit rate", "affine family hit rate",
                  "analytic 1-(1-1/32)^K"});
  for (std::uint64_t K : {16u, 64u, 256u, 1024u}) {
    const int instances = 40;
    int random_hits = 0, affine_hits = 0;
    for (int i = 0; i < instances; ++i) {
      const auto planted = graph::planted_light_cycle(n, 2 * k, rng);
      // Random colorings.
      bool hit = false;
      for (std::uint64_t j = 0; j < K && !hit; ++j) {
        const auto colors = core::random_coloring(n, 2 * k, rng);
        bool consecutive = false;
        for (std::size_t offset = 0; offset < planted.cycle.size() && !consecutive; ++offset) {
          bool fwd = true, bwd = true;
          for (std::size_t t = 0; t < planted.cycle.size(); ++t) {
            const auto expected = static_cast<std::uint8_t>(t);
            const auto len = planted.cycle.size();
            if (colors[planted.cycle[(offset + t) % len]] != expected) fwd = false;
            if (colors[planted.cycle[(offset + len - t) % len]] != expected) bwd = false;
          }
          consecutive = fwd || bwd;
        }
        hit = consecutive;
      }
      random_hits += hit ? 1 : 0;
      const core::AffineColoringFamily family(n, 2 * k, K);
      affine_hits += family.hits_cycle(planted.cycle) ? 1 : 0;
    }
    const double analytic = 1.0 - std::pow(1.0 - 8.0 / 256.0, static_cast<double>(K));
    hits.add_row({TextTable::integer(K),
                  TextTable::num(static_cast<double>(random_hits) / instances, 2),
                  TextTable::num(static_cast<double>(affine_hits) / instances, 2),
                  TextTable::num(analytic, 3)});
  }
  hits.print(std::cout);

  print_banner(std::cout, "end-to-end Algorithm 1 detection rate");
  TextTable detect({"K", "randomized detect rate", "derandomized detect rate"});
  for (std::uint64_t K : {32u, 128u, 512u}) {
    const int runs = 12;
    int randomized = 0, derandomized = 0;
    for (int run = 0; run < runs; ++run) {
      Rng seed(run * 1000 + K);
      const auto planted = graph::planted_light_cycle(n, 2 * k, seed);
      core::PracticalTuning tuning;
      tuning.repetitions = K;
      const auto params = core::Params::practical(k, n, tuning);
      Rng r1 = seed.split();
      if (core::detect_even_cycle(planted.graph, params, r1).cycle_detected) ++randomized;
      const core::AffineColoringFamily family(n, 2 * k, K);
      Rng r2 = seed.split();
      if (core::detect_even_cycle_derandomized(planted.graph, params, family, r2).cycle_detected)
        ++derandomized;
    }
    detect.add_row({TextTable::integer(K),
                    TextTable::num(static_cast<double>(randomized) / runs, 2),
                    TextTable::num(static_cast<double>(derandomized) / runs, 2)});
  }
  detect.print(std::cout);

  std::cout << "\nThe affine family matches random coloring empirically; unlike a\n"
               "[20]-style perfect family it has no worst-case hitting guarantee\n"
               "(see DESIGN.md section 3). The remaining randomness in Algorithm 1\n"
               "is the selection of S — the open question the Conclusion highlights.\n\nDone.\n";
  return 0;
}
