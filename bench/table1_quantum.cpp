// T1-Q: regenerates the quantum rows of the paper's Table 1.
//
// Two parts:
//   1. Analytic landscape: for each k, the modeled round complexities of
//      this paper's quantum algorithm ~O(n^{1/2-1/2k}), the prior
//      van Apeldoorn-de Vos ~O(n^{1/2-1/(4k+2)}), the classical
//      O(n^{1-1/k}), the odd-cycle ~Theta(sqrt n), and the ~Omega(n^{1/4})
//      lower bound — including the quantum/classical speedup factor.
//   2. Measured pipeline: the full Theorem 2 pipeline (congestion-reduced
//      Algorithm 1 -> Theorem 3 amplification -> Lemma 9 diameter
//      reduction) run on planted instances, reporting the charged quantum
//      rounds against the classical-repetition equivalent.
#include <cmath>
#include <iostream>

#include "evencycle.hpp"

namespace {

using namespace evencycle;
using graph::VertexId;

void analytic_landscape(std::uint32_t k) {
  print_banner(std::cout, "Analytic quantum landscape, k = " + std::to_string(k));
  TextTable table({"n", "classical n^{1-1/k}", "quantum ours n^{1/2-1/2k}",
                   "quantum [33] n^{1/2-1/(4k+2)}", "LB n^{1/4}", "speedup (cls/ours)"});
  for (double n = 1024; n <= 1024.0 * 1024 * 64; n *= 16) {
    const double classical = core::predicted_rounds(core::exponent_ours_classical(k), n);
    const double ours = core::predicted_rounds(core::exponent_ours_quantum(k), n);
    const double vadv = core::predicted_rounds(core::exponent_vadv_quantum(k), n);
    const double lb = core::predicted_rounds(0.25, n);
    table.add_row({TextTable::integer(n), TextTable::num(classical, 0),
                   TextTable::num(ours, 0), TextTable::num(vadv, 0), TextTable::num(lb, 0),
                   TextTable::num(classical / ours, 1)});
  }
  table.print(std::cout);
  std::cout << "ours/[33] advantage factor at n=2^30: "
            << TextTable::num(
                   core::predicted_rounds(core::exponent_vadv_quantum(k), 1 << 30) /
                       core::predicted_rounds(core::exponent_ours_quantum(k), 1 << 30),
                   2)
            << "x\n";
}

/// Plants `copies` disjoint 2k-cycles into a random tree: the base
/// detector's per-run success scales with the number of planted cycles,
/// which keeps the emulation detection budget affordable (see DESIGN.md
/// section 3 on the emulation cap).
graph::Graph multi_planted(VertexId n, std::uint32_t length, std::uint32_t copies, Rng& rng) {
  graph::Graph g = graph::random_tree(n, rng);
  for (std::uint32_t c = 0; c < copies; ++c) g = graph::plant_cycle(g, length, rng).graph;
  return g;
}

void measured_pipeline(std::uint32_t k, const std::vector<VertexId>& sizes, Rng& rng) {
  print_banner(std::cout,
               "Measured Theorem 2 pipeline, k = " + std::to_string(k));
  TextTable table({"n", "quantum rounds (charged)", "decomposition rounds",
                   "classical equivalent", "ratio", "detected", "colors"});
  std::vector<double> ns, quantum_rounds;
  for (const auto n : sizes) {
    // Longer cycles color-code exponentially more rarely (prob ~ (2k)^{-2k}
    // per coloring); plant more copies and spend more emulation budget.
    const std::uint32_t copies = k == 2 ? 8 : 60;
    const graph::Graph host = multi_planted(n, 2 * k, copies, rng);
    quantum::QuantumPipelineOptions options;
    options.base_repetitions = k == 2 ? 48 : 96;
    options.max_base_runs = k == 2 ? 1200 : 3000;
    options.delta = 0.1;
    const auto report = quantum::quantum_detect_even_cycle(host, k, options, rng);
    ns.push_back(n);
    quantum_rounds.push_back(static_cast<double>(report.rounds_charged));
    const double ratio = report.classical_rounds_equivalent > 0
                             ? static_cast<double>(report.rounds_charged) /
                                   static_cast<double>(report.classical_rounds_equivalent)
                             : 0.0;
    table.add_row({TextTable::integer(n), TextTable::integer(report.rounds_charged),
                   TextTable::integer(report.rounds_decomposition),
                   TextTable::integer(report.classical_rounds_equivalent),
                   TextTable::num(ratio, 3), report.cycle_detected ? "yes" : "no",
                   TextTable::integer(report.colors)});
  }
  table.print(std::cout);
  const auto fit = fit_power_law(ns, quantum_rounds);
  std::cout << "fitted exponent (charged, includes polylog terms): "
            << TextTable::num(fit.exponent) << "  —  paper: n^{"
            << TextTable::num(core::exponent_ours_quantum(k)) << "} * polylog\n"
            << "(a 'no' above means the capped emulation budget under-reported a\n"
            << " detection — soundness is unaffected; see DESIGN.md section 3)\n";
}

void odd_row(Rng& rng) {
  print_banner(std::cout, "Quantum odd cycles: ~Theta(sqrt n) (Theorem 2)");
  TextTable table({"n", "quantum rounds (charged)", "sqrt(n) reference", "detected"});
  for (const VertexId n : {256u, 512u, 1024u, 2048u}) {
    const graph::Graph host = multi_planted(n, 5, 20, rng);
    quantum::QuantumPipelineOptions options;
    options.base_repetitions = 64;
    options.max_base_runs = 1500;
    const auto report = quantum::quantum_detect_odd_cycle(host, 2, options, rng);
    table.add_row({TextTable::integer(n), TextTable::integer(report.rounds_charged),
                   TextTable::num(std::sqrt(static_cast<double>(n)), 1),
                   report.cycle_detected ? "yes" : "no"});
  }
  table.print(std::cout);
}

void bounded_row(Rng& rng) {
  print_banner(std::cout,
               "Quantum bounded-length {C_l | l <= 2k}: ours vs [33] (Sec. 3.5)");
  TextTable table({"k", "ours exponent", "[33] exponent", "measured charged rounds (n=512)"});
  for (std::uint32_t k : {2u, 3u, 4u}) {
    const auto g = graph::complete_bipartite(16, 16);  // girth 4 <= 2k
    quantum::QuantumPipelineOptions options;
    options.base_repetitions = 48;
    options.max_base_runs = 600;
    const auto report = quantum::quantum_detect_bounded_cycle(g, k, options, rng);
    table.add_row({TextTable::integer(k), TextTable::num(core::exponent_ours_quantum(k)),
                   TextTable::num(core::exponent_vadv_quantum(k)),
                   TextTable::integer(report.rounds_charged)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "Reproduction of Table 1, quantum rows (Theorem 2 / Sections 3.4-3.5).\n"
               "Quantum rounds are charged by the Theorem 3 / Lemma 8 cost model\n"
               "(see quantum/grover.hpp and DESIGN.md section 3).\n";
  Rng rng(0xEC2024);
  analytic_landscape(2);
  analytic_landscape(3);
  analytic_landscape(5);
  measured_pipeline(2, {256, 512, 1024, 2048}, rng);
  measured_pipeline(3, {512, 1024}, rng);
  odd_row(rng);
  bounded_row(rng);
  std::cout << "\nDone.\n";
  return 0;
}
