// T1-Q: the quantum rows of the paper's Table 1 (the Theorem 2 pipeline,
// even and odd variants, with the analytic exponents in the summary). The
// experiment is the harness scenario "table1-quantum"
// (src/harness/scenarios_builtin.cpp); this wrapper is equivalent to
// `evencycle run table1-quantum ...`.
#include "evencycle/api.hpp"

int main(int argc, char** argv) {
  return evencycle::api::scenario_cli("table1-quantum", argc, argv);
}
